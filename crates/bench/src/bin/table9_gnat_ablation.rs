//! Table IX — ablation of GNAT's augmented graphs on PEEGA-poisoned
//! graphs at perturbation rate 0.1.
//!
//! Variants: single views (t, f, e), multi-view combinations (t+f, t+e,
//! f+e, t+f+e), and merged graphs (tf, te, fe, tfe). Feature-view rows are
//! skipped on Polblogs (identity features), exactly as the paper's
//! dashes.
//!
//! Cells are fault-isolated and checkpointed to
//! `results/table9_gnat_ablation.checkpoint.json`; datasets whose cells
//! are all complete are not re-poisoned on resume.
//!
//! Reproduction targets: multi-view combinations beat their single views;
//! each multi-view variant beats its merged counterpart; t+f+e is best.

use bbgnn::prelude::*;
use bbgnn_bench::{
    config::ExpConfig,
    fault::{CellValue, FaultRunner},
    report::Table,
    runner::evaluate_defender_checked,
};

fn variants() -> Vec<(&'static str, Vec<View>, bool)> {
    use View::{Ego as E, Feature as F, Topology as T};
    vec![
        ("GNAT-t", vec![T], false),
        ("GNAT-f", vec![F], false),
        ("GNAT-e", vec![E], false),
        ("GNAT-t+f", vec![T, F], false),
        ("GNAT-t+e", vec![T, E], false),
        ("GNAT-f+e", vec![F, E], false),
        ("GNAT-t+f+e", vec![T, F, E], false),
        ("GNAT-tf", vec![T, F], true),
        ("GNAT-te", vec![T, E], true),
        ("GNAT-fe", vec![F, E], true),
        ("GNAT-tfe", vec![T, F, E], true),
    ]
}

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("table9_gnat_ablation"));
    let mut harness = FaultRunner::new(&cfg, "table9_gnat_ablation");

    let specs = DatasetSpec::paper_datasets();
    let mut headers = vec!["Variant".to_string()];
    headers.extend(specs.iter().map(|s| s.name().to_string()));
    let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    // Poison each dataset once with PEEGA — unless every one of its cells
    // is already checkpointed, in which case the clean graph stands in (no
    // cell will evaluate it).
    let poisoned: Vec<(bool, Graph)> = specs
        .iter()
        .map(|s| {
            let g = s.generate(cfg.scale, cfg.seed);
            let dataset_done = variants()
                .iter()
                .all(|(name, _, _)| harness.is_done(&format!("{}/{name}", s.name())));
            if dataset_done {
                (s.identity_features(), g)
            } else {
                let mut atk = Peega::new(PeegaConfig {
                    rate: cfg.rate,
                    ..Default::default()
                });
                (s.identity_features(), atk.attack(&g).poisoned)
            }
        })
        .collect();

    for (name, views, merged) in variants() {
        let uses_features = views.contains(&View::Feature);
        let mut cells = vec![name.to_string()];
        for (spec, (identity, g)) in specs.iter().zip(&poisoned) {
            if uses_features && *identity {
                cells.push("-".to_string());
                continue;
            }
            let kind = DefenderKind::Gnat(GnatConfig {
                views: views.clone(),
                merged,
                // Dense graphs saturate at 2 hops (see registry note).
                k_t: if *identity { 1 } else { 2 },
                ..Default::default()
            });
            let key = format!("{}/{name}", spec.name());
            cells.push(harness.cell(&key, cfg.seed, |seed| {
                let (stats, health) = evaluate_defender_checked(&kind, g, cfg.runs, seed);
                let text = stats.to_string();
                Ok(if health.is_degraded() {
                    CellValue::degraded(text)
                } else {
                    CellValue::clean(text)
                })
            }));
        }
        eprintln!("[{name} done]");
        table.push_row(cells);
    }
    table.emit(&cfg.out_dir, "table9_gnat_ablation");
    println!("\n{}", harness.summary());
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("paper: multi-view > single view; multi-view > merged; t+f+e best.");
}
