//! Deterministic content fingerprints for matrix values.
//!
//! The artifact store (`crates/store`) keys cached surrogates and factor
//! bundles by the *exact bits* of their inputs: a perturbed adjacency must
//! never alias a clean one, and two graphs that differ in a single edge or
//! feature bit must hash differently. The fingerprint is FNV-1a over the
//! structural dimensions and the IEEE-754 bit patterns of every value —
//! no float arithmetic, so the hash is identical across platforms,
//! optimization levels, and thread counts (values are read in storage
//! order, never reduced).

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a hasher over byte-like tokens.
///
/// Not a cryptographic hash: collisions are guarded downstream (the store
/// compares the full key text recorded in every artifact header).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one byte.
    #[inline]
    pub fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a byte slice.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Absorbs an `f64` by bit pattern (`-0.0 != 0.0`, NaN payloads count).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Absorbs a slice of `f64` bit patterns.
    pub fn f64s(&mut self, vs: &[f64]) {
        for &v in vs {
            self.f64(v);
        }
    }

    /// Absorbs a slice of `usize` values.
    pub fn usizes(&mut self, vs: &[usize]) {
        for &v in vs {
            self.usize(v);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of a byte slice in one call.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrMatrix, DenseMatrix};

    #[test]
    fn fnv_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn dense_hash_is_sensitive_to_shape_and_bits() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let mut c = a.clone();
        assert_eq!(a.content_hash(), c.content_hash());
        assert_ne!(a.content_hash(), b.content_hash(), "shape must matter");
        c.set(1, 1, 4.0 + 1e-15);
        assert_ne!(a.content_hash(), c.content_hash(), "one ulp must matter");
    }

    #[test]
    fn csr_hash_is_sensitive_to_structure_and_values() {
        let a = CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0), (2, 0, 0.5)]);
        let b = CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0), (2, 0, 0.5)]);
        assert_eq!(a.content_hash(), b.content_hash());
        let moved = CsrMatrix::from_triplets(3, 3, [(0, 2, 1.0), (2, 0, 0.5)]);
        assert_ne!(a.content_hash(), moved.content_hash());
        let reweighted = CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0), (2, 0, 0.25)]);
        assert_ne!(a.content_hash(), reweighted.content_hash());
    }

    #[test]
    fn zero_and_negative_zero_differ() {
        let z = DenseMatrix::from_vec(1, 1, vec![0.0]);
        let nz = DenseMatrix::from_vec(1, 1, vec![-0.0]);
        assert_ne!(z.content_hash(), nz.content_hash());
    }
}
