#!/bin/sh
# Regenerates every table and figure of the paper (DESIGN.md section 2).
# Each binary also writes CSV into results/. Logs go to results/logs/.
set -u
cd "$(dirname "$0")"
BINS="fig1_homophily fig2_edge_diff fig3_sim_label table7_attack_time fig5_attack_ablation fig8_lambda_p fig9_gnat_params table9_gnat_ablation ext_extensions ext_targeted ext_evasion_transfer ext_sweep_scale table8_defense_time fig7_sensitivity tables_main fig6_ptb_sweep"
for bin in $BINS; do
    echo "=== $bin start $(date +%H:%M:%S) ==="
    # The two heaviest bins (Pro-GNN appears in every cell/series) run with
    # 2 repeats by default; pass --runs to override.
    extra=""
    case "$bin" in
        tables_main|fig6_ptb_sweep) extra="--runs 2" ;;
    esac
    timeout 4500 cargo run -p bbgnn-bench --release --bin "$bin" -- $extra "$@" \
        > "results/logs/$bin.log" 2>&1
    status=$?
    echo "=== $bin done (exit $status) $(date +%H:%M:%S) ==="
done
