//! Fig. 9 — GNAT hyper-parameter sensitivity (k_t, k_f, k_e) on the
//! Citeseer-like dataset poisoned by PEEGA at perturbation rate 0.1.
//!
//! Following the paper: the default setting is {k_t = 2, k_f = 15,
//! k_e = 10}; one parameter is swept while the others stay at default.
//! Each sweep reports the single-view variant and the full t+f+e variant.
//!
//! Reproduction target: accuracy first rises then falls in each sweep —
//! moderate augmentation connects same-label nodes, excessive
//! augmentation injects noise (k_t, k_f) or drowns out the neighborhood
//! (k_e).

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::evaluate_defender};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig9_gnat_params"));
    let g = DatasetSpec::CiteseerLike.generate(cfg.scale, cfg.seed);
    let mut atk = Peega::new(PeegaConfig {
        rate: cfg.rate,
        ..Default::default()
    });
    let poisoned = atk.attack(&g).poisoned;
    println!("poisoned citeseer-like graph ready\n");

    let eval = |config: GnatConfig| -> MeanStd {
        evaluate_defender(&DefenderKind::Gnat(config), &poisoned, cfg.runs, cfg.seed)
    };

    // k_t sweep.
    let mut t_kt = Table::new(&["k_t", "GNAT-t", "GNAT-t+f+e"]);
    for &k_t in &[1usize, 2, 3] {
        let single = eval(GnatConfig {
            k_t,
            views: vec![View::Topology],
            ..Default::default()
        });
        let full = eval(GnatConfig {
            k_t,
            ..Default::default()
        });
        t_kt.push_row(vec![k_t.to_string(), single.to_string(), full.to_string()]);
        eprintln!("[k_t {k_t} done]");
    }
    t_kt.emit(&cfg.out_dir, "fig9_kt");

    // k_f sweep.
    let mut t_kf = Table::new(&["k_f", "GNAT-f", "GNAT-t+f+e"]);
    for &k_f in &[5usize, 10, 15, 20] {
        let single = eval(GnatConfig {
            k_f,
            views: vec![View::Feature],
            ..Default::default()
        });
        let full = eval(GnatConfig {
            k_f,
            ..Default::default()
        });
        t_kf.push_row(vec![k_f.to_string(), single.to_string(), full.to_string()]);
        eprintln!("[k_f {k_f} done]");
    }
    t_kf.emit(&cfg.out_dir, "fig9_kf");

    // k_e sweep.
    let mut t_ke = Table::new(&["k_e", "GNAT-e", "GNAT-t+f+e"]);
    for &k_e in &[1.0, 5.0, 10.0, 15.0, 20.0] {
        let single = eval(GnatConfig {
            k_e,
            views: vec![View::Ego],
            ..Default::default()
        });
        let full = eval(GnatConfig {
            k_e,
            ..Default::default()
        });
        t_ke.push_row(vec![format!("{k_e}"), single.to_string(), full.to_string()]);
        eprintln!("[k_e {k_e} done]");
    }
    t_ke.emit(&cfg.out_dir, "fig9_ke");
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("\npaper: each sweep rises then falls; the default {{2, 15, 10}} is near-optimal.");
}
