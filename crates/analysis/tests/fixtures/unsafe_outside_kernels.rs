// Fixture: `unsafe` anywhere but the audited kernel file must fire
// `unsafe`, SAFETY comment or not.
pub fn reinterpret(x: &[f64]) -> &[u8] {
    // SAFETY: a comment does not make the location acceptable.
    unsafe { std::slice::from_raw_parts(x.as_ptr().cast(), x.len() * 8) }
}
