// Fixture: unwrap / expect / panic! in library code must each fire
// `panic`.
pub fn panicky(v: &[usize]) -> usize {
    let first = v.first().unwrap();
    let last = v.last().expect("non-empty");
    if first > last {
        panic!("unsorted");
    }
    *first
}
