//! The `// lint: allow(<rule>) reason=...` suppression mechanism.
//!
//! Every rule `bbgnn-lint` enforces can be locally waived, but never
//! silently: a directive must name the rule it waives and carry a
//! non-empty reason, and it only reaches the flagged line or the line
//! directly below it (so a directive cannot drift away from the code it
//! excuses). A malformed directive — unknown rule name, missing reason —
//! is itself a violation, reported under the `lint_allow` meta-rule.
//!
//! Accepted placements:
//!
//! ```text
//! // lint: allow(panic) reason=length is pinned by the assert above
//! let x = v.last().unwrap();
//!
//! let y = v.last().unwrap(); // lint: allow(panic) reason=non-empty by construction
//! ```

use crate::lexer::Lexed;
use crate::rules::{Rule, Violation};

/// One parsed suppression directive.
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: Rule,
    /// Lines this directive covers (the comment's own lines plus the next
    /// code line).
    pub from_line: u32,
    pub to_line: u32,
    /// Set once a violation is suppressed, for the report's allow count.
    pub used: bool,
}

/// Parses all directives in a file's comments. Malformed directives are
/// returned as violations instead.
pub fn parse_allows(file: &str, lx: &Lexed) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lx.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            let after = &rest[pos + "lint: allow(".len()..];
            let Some(close) = after.find(')') else {
                bad.push(Violation::new(
                    file,
                    c.line,
                    Rule::LintAllow,
                    "unterminated lint: allow( directive".to_string(),
                ));
                break;
            };
            let rule_name = after[..close].trim();
            let tail = &after[close + 1..];
            rest = tail;
            // Prose *about* the syntax (`lint: allow(<rule>)`, `allow(...)`)
            // is not a directive: only identifier-shaped rule names are
            // parsed, so docs can describe the mechanism without invoking
            // it, while a typoed real rule name still errors below.
            if rule_name.is_empty()
                || !rule_name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_')
            {
                continue;
            }
            let Some(rule) = Rule::from_name(rule_name) else {
                bad.push(Violation::new(
                    file,
                    c.line,
                    Rule::LintAllow,
                    format!(
                        "unknown rule {rule_name:?} in lint: allow(...) — known rules: {}",
                        Rule::KNOWN.join(", ")
                    ),
                ));
                continue;
            };
            let reason = tail
                .find("reason=")
                .map(|r| tail[r + "reason=".len()..].trim())
                .unwrap_or("");
            if reason.is_empty() {
                bad.push(Violation::new(
                    file,
                    c.line,
                    Rule::LintAllow,
                    format!("lint: allow({rule_name}) without a non-empty reason=..."),
                ));
                continue;
            }
            allows.push(Allow {
                rule,
                from_line: c.line,
                to_line: c.end_line + 1,
                used: false,
            });
        }
    }
    (allows, bad)
}

/// Drops violations covered by a matching directive, marking those
/// directives used. Returns the surviving violations and the used count.
pub fn apply_allows(violations: Vec<Violation>, allows: &mut [Allow]) -> (Vec<Violation>, usize) {
    let mut kept = Vec::new();
    for v in violations {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == v.rule && a.from_line <= v.line && v.line <= a.to_line {
                a.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            kept.push(v);
        }
    }
    let used = allows.iter().filter(|a| a.used).count();
    (kept, used)
}
