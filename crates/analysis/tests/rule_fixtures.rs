//! Fixture-based tests: every rule has a fixture that must fire and a
//! fixture (allowlisted or compliant) that must pass. Fixtures live under
//! `tests/fixtures/`, which the workspace walker skips — each is linted
//! here under a synthetic workspace path that selects the scope under
//! test.

use bbgnn_analysis::{lint_source, FileReport, Taxonomy};

const NUMERIC_LIB: &str = "crates/attack/src/fixture.rs";
const KERNELS: &str = "crates/linalg/src/kernels.rs";

fn tax() -> Taxonomy {
    bbgnn_analysis::taxonomy::builtin().expect("DESIGN.md §8 taxonomy parses")
}

fn lint_at(path: &str, src: &str) -> FileReport {
    lint_source(path, src, &tax())
}

fn fired(report: &FileReport) -> Vec<&str> {
    report.violations.iter().map(|v| v.rule.name()).collect()
}

// --- fma ----------------------------------------------------------------

#[test]
fn fma_fires_in_numeric_lib() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/fma_bad.rs"));
    assert_eq!(fired(&r), ["fma"]);
    assert_eq!(r.violations[0].line, 3);
}

#[test]
fn fma_allowlisted_passes() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/fma_allowed.rs"));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.allows_used, 1);
}

#[test]
fn fma_out_of_scope_in_bins_and_tests() {
    let src = include_str!("fixtures/fma_bad.rs");
    for path in ["crates/attack/src/bin/tool.rs", "crates/attack/tests/t.rs"] {
        assert!(lint_at(path, src).violations.is_empty(), "{path}");
    }
}

// --- hash_iter ----------------------------------------------------------

#[test]
fn hash_iter_fires_on_for_extend_and_methods() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/hash_iter_bad.rs"));
    assert_eq!(fired(&r), ["hash_iter", "hash_iter", "hash_iter"]);
    let lines: Vec<u32> = r.violations.iter().map(|v| v.line).collect();
    assert_eq!(lines, [9, 12, 13]); // for-loop, .extend(set), .keys()
}

#[test]
fn hash_membership_only_passes() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/hash_iter_ok.rs"));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// --- clock --------------------------------------------------------------

#[test]
fn clock_fires_on_instant_and_systemtime() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/clock_bad.rs"));
    assert_eq!(fired(&r), ["clock", "clock"]);
}

#[test]
fn clock_allowlisted_passes() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/clock_allowed.rs"));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.allows_used, 1);
}

#[test]
fn clock_is_fine_outside_numeric_crates() {
    let src = include_str!("fixtures/clock_bad.rs");
    for path in ["crates/obs/src/lib.rs", "crates/bench/src/trace.rs"] {
        assert!(lint_at(path, src).violations.is_empty(), "{path}");
    }
}

#[test]
fn thread_sleep_fires_everywhere_including_tests() {
    let src = include_str!("fixtures/clock_sleep_bad.rs");
    // Non-numeric lib, test file: the sleep scan ignores both exemptions.
    for path in [
        "crates/bench/src/fault.rs",
        "crates/errors/tests/retry.rs",
        NUMERIC_LIB,
    ] {
        let r = lint_at(path, src);
        assert_eq!(fired(&r), ["clock", "clock"], "{path}");
    }
}

#[test]
fn injected_sleeper_seam_passes_with_waiver() {
    let r = lint_at(
        "crates/errors/src/lib.rs",
        include_str!("fixtures/clock_sleep_allowed.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.allows_used, 1);
}

// --- unsafe -------------------------------------------------------------

#[test]
fn unsafe_forbidden_outside_kernels_even_with_safety_comment() {
    let src = include_str!("fixtures/unsafe_outside_kernels.rs");
    let r = lint_at("crates/graph/src/graph.rs", src);
    assert_eq!(fired(&r), ["unsafe"]);
}

#[test]
fn undocumented_unsafe_fires_in_kernels() {
    let r = lint_at(KERNELS, include_str!("fixtures/unsafe_undocumented.rs"));
    assert_eq!(fired(&r), ["unsafe"]);
}

#[test]
fn documented_unsafe_passes_in_kernels() {
    let r = lint_at(KERNELS, include_str!("fixtures/unsafe_documented.rs"));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn documented_unsafe_passes_in_signal_binding() {
    let src = include_str!("fixtures/unsafe_documented.rs");
    let r = lint_at("crates/supervise/src/signal.rs", src);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    // Undocumented unsafe still fires there.
    let r = lint_at(
        "crates/supervise/src/signal.rs",
        include_str!("fixtures/unsafe_undocumented.rs"),
    );
    assert_eq!(fired(&r), ["unsafe"]);
}

// --- fault_site ----------------------------------------------------------

#[test]
fn fault_site_fires_on_uncataloged_literals() {
    let src = include_str!("fixtures/fault_site_bad.rs");
    // Whole-workspace scope: lib, bin, and test paths all fire.
    for path in [
        "crates/graph/src/datasets/io.rs",
        "crates/bench/src/bin/tool.rs",
        "crates/bench/tests/chaos.rs",
    ] {
        let r = lint_at(path, src);
        assert_eq!(fired(&r), ["fault_site"], "{path}");
        assert!(r.violations[0].msg.contains("fault/bogus_site"));
    }
}

#[test]
fn fault_site_accepts_catalog_names_and_skips_dynamic_ones() {
    let r = lint_at(
        "crates/store/src/lib.rs",
        include_str!("fixtures/fault_site_ok.rs"),
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// --- panic --------------------------------------------------------------

#[test]
fn panic_fires_on_unwrap_expect_and_panic_macro() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/panic_bad.rs"));
    assert_eq!(fired(&r), ["panic", "panic", "panic"]);
}

#[test]
fn panic_skips_tests_and_honors_allow() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/panic_ok.rs"));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.allows_used, 1);
}

#[test]
fn panic_out_of_scope_in_binaries() {
    let src = include_str!("fixtures/panic_bad.rs");
    let r = lint_at("crates/bench/src/bin/tables.rs", src);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// --- obs_name -----------------------------------------------------------

#[test]
fn obs_name_fires_on_names_outside_the_taxonomy() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/obs_name_bad.rs"));
    assert_eq!(fired(&r), ["obs_name", "obs_name", "obs_name", "obs_name"]);
}

#[test]
fn obs_name_accepts_taxonomy_names_and_skips_dynamic_ones() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/obs_name_ok.rs"));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// --- lint_allow meta-rule -----------------------------------------------

#[test]
fn malformed_directives_are_themselves_violations() {
    let r = lint_at(NUMERIC_LIB, include_str!("fixtures/lint_allow_bad.rs"));
    assert_eq!(fired(&r), ["lint_allow", "lint_allow"]);
    assert!(r.violations[0].msg.contains("unknown rule"));
    assert!(r.violations[1].msg.contains("reason"));
}

// --- the workspace itself stays clean ------------------------------------

#[test]
fn workspace_is_lint_clean() {
    // Also proves the walker skips `fixtures/` dirs: every fixture above
    // contains deliberate violations, so a non-skipping walk would fail.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let report = bbgnn_analysis::lint_workspace(std::path::Path::new(root), &tax())
        .expect("workspace walk succeeds");
    let rendered: Vec<String> = report.violations.iter().map(|v| v.render()).collect();
    assert!(rendered.is_empty(), "{}", rendered.join("\n"));
}
