//! Property-based tests for the linear-algebra substrate.

use bbgnn_linalg::svd::jacobi_svd;
use bbgnn_linalg::{dense::lp_norm, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data))
}

/// Strategy: a symmetric 0/1 adjacency matrix without self loops.
fn adjacency(n: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(prop::bool::ANY, n * n).prop_map(move |bits| {
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if bits[i * n + j] {
                    a.set(i, j, 1.0);
                    a.set(j, i, 1.0);
                }
            }
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix(4, 3), b in matrix(3, 5), c in matrix(5, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(4, 4), b in matrix(4, 4), c in matrix(4, 4)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_reverses_matmul(a in matrix(3, 4), b in matrix(4, 5)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn csr_roundtrip_preserves_matrix(a in matrix(5, 7)) {
        let csr = CsrMatrix::from_dense(&a, 0.0);
        prop_assert!(csr.to_dense().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn spmm_agrees_with_dense_matmul(a in matrix(5, 5), x in matrix(5, 3)) {
        let csr = CsrMatrix::from_dense(&a, 0.0);
        prop_assert!(csr.spmm(&x).max_abs_diff(&a.matmul(&x)) < 1e-9);
    }

    #[test]
    fn gcn_normalization_is_symmetric_and_bounded(a in adjacency(6)) {
        let csr = CsrMatrix::from_dense(&a, 0.5);
        let n = csr.gcn_normalize();
        prop_assert!(n.asymmetry() < 1e-12);
        // Spectral radius of the GCN-normalized adjacency is <= 1, so every
        // entry is also bounded by 1.
        let d = n.to_dense();
        prop_assert!(d.max_abs() <= 1.0 + 1e-12);
        // Rows with self-loop: every row sum is positive.
        for s in n.row_sums() {
            prop_assert!(s > 0.0);
        }
    }

    #[test]
    fn svd_reconstructs_and_norms_match(a in matrix(6, 4)) {
        let svd = jacobi_svd(&a);
        prop_assert!(svd.reconstruct().max_abs_diff(&a) < 1e-7);
        let sigma_norm: f64 = svd.sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((sigma_norm - a.frobenius_norm()).abs() < 1e-7);
    }

    #[test]
    fn lp_norm_triangle_inequality(
        a in prop::collection::vec(-10.0f64..10.0, 8),
        b in prop::collection::vec(-10.0f64..10.0, 8),
        p in prop::sample::select(vec![1.0f64, 2.0, 3.0]),
    ) {
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert!(lp_norm(&sum, p) <= lp_norm(&a, p) + lp_norm(&b, p) + 1e-9);
    }

    #[test]
    fn lp_norm_scaling(v in prop::collection::vec(-5.0f64..5.0, 6), c in -3.0f64..3.0) {
        let scaled: Vec<f64> = v.iter().map(|x| c * x).collect();
        let lhs = lp_norm(&scaled, 2.0);
        let rhs = c.abs() * lp_norm(&v, 2.0);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn select_rows_matches_gets(a in matrix(6, 3), idx in prop::collection::vec(0usize..6, 1..5)) {
        let s = a.select_rows(&idx);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(s.row(k), a.row(i));
        }
    }
}
