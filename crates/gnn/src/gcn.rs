//! The Kipf–Welling graph convolutional network (Eq. 1–2 of the paper).

use crate::train::{train_node_classifier_keyed, Mode, TrainConfig, TrainReport};
use crate::NodeClassifier;
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_graph::Graph;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::rc::Rc;

/// A GCN with `layers.len() + 1` weight matrices:
/// `Z = softmax(A_n σ(A_n … σ(A_n X W⁰) …) W^L)`.
///
/// The paper's victim model is the 2-layer instance with 16 hidden units;
/// [`Gcn::paper_default`] builds exactly that. Depth is configurable for
/// the Fig. 7(b) layer-sensitivity experiment.
pub struct Gcn {
    /// Hidden layer widths (one entry per hidden layer).
    pub hidden: Vec<usize>,
    /// Training configuration.
    pub config: TrainConfig,
    weights: Vec<DenseMatrix>,
    trained_on: Option<Rc<CsrMatrix>>,
}

/// Hidden widths as a stable key token, e.g. `16x16`.
fn join_dims(dims: &[usize]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x")
}

impl Gcn {
    /// Creates an untrained GCN with the given hidden widths.
    pub fn new(hidden: Vec<usize>, config: TrainConfig) -> Self {
        Self {
            hidden,
            config,
            weights: Vec::new(),
            trained_on: None,
        }
    }

    /// The paper's victim: 2 layers, 16 hidden units.
    pub fn paper_default(config: TrainConfig) -> Self {
        Self::new(vec![16], config)
    }

    /// Trained weights (empty before [`NodeClassifier::fit`]).
    pub fn weights(&self) -> &[DenseMatrix] {
        &self.weights
    }

    fn init_weights(&self, in_dim: usize, num_classes: usize) -> Vec<DenseMatrix> {
        let mut dims = vec![in_dim];
        dims.extend(&self.hidden);
        dims.push(num_classes);
        dims.windows(2)
            .enumerate()
            .map(|(i, w)| DenseMatrix::glorot(w[0], w[1], self.config.seed.wrapping_add(i as u64)))
            .collect()
    }

    /// Builds the forward pass on `tape`: registers weights as variables
    /// and returns `(logits, weight_ids)`. [`Mode::Eval`] disables dropout
    /// (inference).
    fn forward(
        &self,
        tape: &mut Tape,
        weights: &[DenseMatrix],
        an: &Rc<CsrMatrix>,
        x: &DenseMatrix,
        dropout: f64,
        mode: Mode,
    ) -> (TensorId, Vec<TensorId>) {
        let ids: Vec<TensorId> = weights.iter().map(|w| tape.var(w.clone())).collect();
        let mut h = tape.constant(x.clone());
        let last = ids.len() - 1;
        for (l, &w) in ids.iter().enumerate() {
            // Dropout on the input of every layer (as in the reference
            // implementation) during training only.
            if let (true, Some(epoch)) = (dropout > 0.0, mode.train_epoch()) {
                let seed = self
                    .config
                    .seed
                    .wrapping_add(1000)
                    .wrapping_add((epoch as u64) * 31 + l as u64);
                h = tape.dropout(h, dropout, seed);
            }
            // lint: allow(check_site) reason=forward builds one epoch's graph; the §11 check sits at the epoch boundary in the train loop
            let hw = tape.matmul(h, w);
            h = tape.spmm(Rc::clone(an), hw);
            if l < last {
                h = tape.relu(h);
            }
        }
        (h, ids)
    }

    /// Trains on `g` but propagates over a caller-supplied (possibly
    /// weighted or purified) normalized adjacency — the entry point used by
    /// preprocessing defenders like GCN-SVD.
    pub fn fit_on(&mut self, g: &Graph, an: Rc<CsrMatrix>) -> TrainReport {
        assert_eq!(an.rows(), g.num_nodes(), "adjacency size mismatch");
        self.trained_on = Some(Rc::clone(&an));
        let mut weights = self.init_weights(g.feature_dim(), g.num_classes);
        let dropout = self.config.dropout;
        let x = g.features.clone();
        let cfg = self.config.clone();
        // The adjacency is a caller-supplied input (e.g. GCN-SVD's purified
        // graph), so its content hash must be part of the key: a raw GCN and
        // a purified one share `g` and config but must never share weights.
        let salt = bbgnn_store::enabled().then(|| {
            bbgnn_store::Key::new("model/gcn")
                .field("hidden", join_dims(&self.hidden))
                .hash_field("an", an.content_hash())
        });
        let this = &*self;
        let report =
            train_node_classifier_keyed(&mut weights, g, &cfg, salt, |tape, params, mode| {
                this.forward(tape, params, &an, &x, dropout, mode)
            });
        self.weights = weights;
        report
    }

    /// Logits using the trained weights over a caller-supplied normalized
    /// adjacency.
    pub fn logits_on(&self, features: &DenseMatrix, an: &Rc<CsrMatrix>) -> DenseMatrix {
        assert!(!self.weights.is_empty(), "model is not trained");
        let mut tape = Tape::new();
        let (out, _) = self.forward(&mut tape, &self.weights, an, features, 0.0, Mode::Eval);
        tape.value(out).clone()
    }

    /// Logits for an arbitrary graph using the trained weights.
    pub fn logits(&self, g: &Graph) -> DenseMatrix {
        let an = Rc::new(g.normalized_adjacency());
        self.logits_on(&g.features, &an)
    }

    /// The adjacency this model was trained on, if any.
    pub fn trained_adjacency(&self) -> Option<&Rc<CsrMatrix>> {
        self.trained_on.as_ref()
    }
}

impl NodeClassifier for Gcn {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        self.fit_on(g, Rc::new(g.normalized_adjacency()))
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        self.logits(g).row_argmax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn gcn_learns_homophilous_sbm() {
        let g = DatasetSpec::CoraLike.generate(0.08, 21);
        let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
        let report = gcn.fit(&g);
        assert!(report.final_loss.is_finite());
        let acc = gcn.test_accuracy(&g);
        assert!(
            acc > 0.6,
            "GCN accuracy {acc} too low on a clean homophilous graph"
        );
    }

    #[test]
    fn gcn_beats_majority_on_identity_features() {
        // Polblogs-like: only the topology is informative.
        let g = DatasetSpec::PolblogsLike.generate(0.15, 22);
        let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
        gcn.fit(&g);
        let acc = gcn.test_accuracy(&g);
        assert!(acc > 0.75, "GCN accuracy {acc} too low on polblogs-like");
    }

    #[test]
    fn deeper_gcn_still_trains() {
        let g = DatasetSpec::CoraLike.generate(0.05, 23);
        let mut gcn = Gcn::new(vec![16, 16, 16], TrainConfig::fast_test());
        gcn.fit(&g);
        let acc = gcn.test_accuracy(&g);
        assert!(
            acc > 0.35,
            "3-hidden-layer GCN accuracy {acc} unexpectedly low"
        );
    }

    #[test]
    fn logits_shape_and_prediction_range() {
        let g = DatasetSpec::CiteseerLike.generate(0.05, 24);
        let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
        gcn.fit(&g);
        let logits = gcn.logits(&g);
        assert_eq!(logits.shape(), (g.num_nodes(), g.num_classes));
        for p in gcn.predict(&g) {
            assert!(p < g.num_classes);
        }
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let g = DatasetSpec::CoraLike.generate(0.05, 25);
        let mut a = Gcn::paper_default(TrainConfig::fast_test());
        let mut b = Gcn::paper_default(TrainConfig::fast_test());
        a.fit(&g);
        b.fit(&g);
        assert_eq!(a.predict(&g), b.predict(&g));
    }

    #[test]
    #[should_panic(expected = "not trained")]
    fn predict_before_fit_panics() {
        let g = DatasetSpec::CoraLike.generate(0.05, 26);
        let gcn = Gcn::paper_default(TrainConfig::fast_test());
        let _ = gcn.predict(&g);
    }

    #[test]
    fn nan_poisoned_features_abort_training_without_panic() {
        // Fault injection: validation normally rejects NaN features at
        // construction, so poison them after the fact — the training
        // sentinels are the last line of defense.
        let mut g = DatasetSpec::CoraLike.generate(0.05, 27);
        g.features.set(3, 0, f64::NAN);
        let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
        let report = gcn.fit(&g);
        assert!(
            report.diverged,
            "a NaN input must surface as a diverged report"
        );
        assert_eq!(
            report.divergence_recoveries,
            crate::train::MAX_DIVERGENCE_RECOVERIES,
            "every rollback+retry must be attempted before giving up"
        );
        // The model still holds the last-good (initial) parameters: finite
        // predictions, not a poisoned crash.
        for p in gcn.predict(&g) {
            assert!(p < g.num_classes);
        }
    }
}
