//! Supervision-layer integration tests for the attackers.
//!
//! Own integration-test binary (one process) because these install
//! process-global budgets; inside the unit-test harness they would
//! interrupt unrelated attacker tests on sibling threads. Within this
//! binary the tests serialize on `LOCK`.

use bbgnn_attack::peega::{Peega, PeegaConfig};
use bbgnn_attack::random::{RandomAttack, RandomAttackConfig};
use bbgnn_attack::Attacker;
use bbgnn_graph::datasets::DatasetSpec;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    bbgnn_supervise::shutdown();
    guard
}

/// A query budget trips at a deterministic perturbation boundary: PEEGA's
/// greedy loop commits exactly one flip per iteration, and each iteration
/// scans the full candidate space, so `queries: 1` admits exactly the
/// first iteration on every run.
#[test]
fn query_budget_stops_peega_after_one_perturbation() {
    let _g = locked();
    let g = DatasetSpec::CoraLike.generate(0.05, 41);
    let cfg = PeegaConfig {
        rate: 0.1,
        ..PeegaConfig::default()
    };

    let budget = bbgnn_supervise::RunBudget {
        queries: Some(1),
        ..bbgnn_supervise::RunBudget::default()
    };
    bbgnn_supervise::install_budget(&budget);
    let first = Peega::new(cfg.clone()).attack(&g);
    bbgnn_supervise::shutdown();
    bbgnn_supervise::install_budget(&budget);
    let second = Peega::new(cfg.clone()).attack(&g);
    bbgnn_supervise::shutdown();

    assert!(first.truncated, "query budget must flag the result");
    assert_eq!(
        first.edge_flips + first.feature_flips,
        1,
        "exactly the first greedy iteration fits in one scan's budget"
    );
    let e1: Vec<_> = first.poisoned.edges().collect();
    let e2: Vec<_> = second.poisoned.edges().collect();
    assert_eq!(e1, e2, "budgeted stop must land at the same flip");

    // An unconstrained rerun is unaffected (zero-cost-off) and strictly
    // stronger than the truncated one.
    let full = Peega::new(cfg).attack(&g);
    assert!(!full.truncated);
    assert!(full.edge_flips + full.feature_flips > 1);
}

/// Cancellation before the attack starts returns the clean graph, flagged.
#[test]
fn cancellation_returns_the_clean_graph() {
    let _g = locked();
    let g = DatasetSpec::CoraLike.generate(0.05, 42);
    bbgnn_supervise::request_cancel();
    let r = RandomAttack::new(RandomAttackConfig::default()).attack(&g);
    bbgnn_supervise::shutdown();
    assert!(r.truncated);
    assert_eq!(r.edge_flips, 0, "no flip may be committed after a cancel");
}
