//! Named factories over every attacker and defender — the registry the
//! experiment harness, the examples, and `bbgnn-serve` resolve against to
//! produce the paper's table rows and columns.
//!
//! Two resolution styles:
//!
//! * the paper-ordered collections ([`AttackerKind::paper_rows`],
//!   [`DefenderKind::paper_columns`]) the table binaries iterate over;
//! * by-name lookup ([`attacker_by_name`], [`defender_by_name`]) for job
//!   specs arriving over the wire — unknown names come back as
//!   [`InvalidConfig`](BbgnnError::InvalidConfig) naming the field, never
//!   as a panic.

use bbgnn_attack::dice::{Dice, DiceConfig};
use bbgnn_attack::gfattack::{GfAttack, GfAttackConfig};
use bbgnn_attack::metattack::{Metattack, MetattackConfig};
use bbgnn_attack::minmax::{MinMaxAttack, MinMaxConfig};
use bbgnn_attack::peega::{Peega, PeegaConfig};
use bbgnn_attack::peega_parallel::{PeegaParallel, PeegaParallelConfig};
use bbgnn_attack::pgd::{PgdAttack, PgdConfig};
use bbgnn_attack::random::{RandomAttack, RandomAttackConfig};
use bbgnn_attack::targeted::{TargetedPeega, TargetedPeegaConfig};
use bbgnn_attack::Attacker;
use bbgnn_defense::gnat::{Gnat, GnatConfig};
use bbgnn_defense::jaccard::{GcnJaccard, GcnJaccardConfig};
use bbgnn_defense::prognn::{ProGnn, ProGnnConfig};
use bbgnn_defense::rgcn::{Rgcn, RgcnConfig};
use bbgnn_defense::simpgcn::{SimPGcn, SimPGcnConfig};
use bbgnn_defense::svd_defense::{GcnSvd, GcnSvdConfig};
use bbgnn_defense::Defender;
use bbgnn_errors::{BbgnnError, BbgnnResult};
use bbgnn_gnn::gat::Gat;
use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::TrainConfig;

/// Every attacker of the evaluation section, in the row order of
/// Tables IV–VI, plus the controls and variants the sensitivity figures
/// use.
#[derive(Clone, Debug)]
pub enum AttackerKind {
    /// White-box PGD.
    Pgd(PgdConfig),
    /// White-box MinMax.
    MinMax(MinMaxConfig),
    /// Gray-box Metattack.
    Metattack(MetattackConfig),
    /// Black-box GF-Attack.
    GfAttack(GfAttackConfig),
    /// Black-box PEEGA (the paper's attacker).
    Peega(PeegaConfig),
    /// Random control (not a paper row).
    Random(RandomAttackConfig),
    /// DICE heuristic control (disconnect internally, connect externally).
    Dice(DiceConfig),
    /// PEEGA's thread-parallel variant (identical output, faster clock).
    PeegaParallel(PeegaParallelConfig),
    /// Targeted PEEGA (the Nettack setting of Table I).
    TargetedPeega(TargetedPeegaConfig),
}

impl AttackerKind {
    /// The paper's attacker rows at perturbation rate `rate`, tuned for
    /// laptop-scale graphs.
    pub fn paper_rows(rate: f64) -> Vec<AttackerKind> {
        vec![
            AttackerKind::Pgd(PgdConfig {
                rate,
                ..Default::default()
            }),
            AttackerKind::MinMax(MinMaxConfig {
                rate,
                ..Default::default()
            }),
            AttackerKind::Metattack(MetattackConfig {
                rate,
                retrain_every: 5,
                ..Default::default()
            }),
            AttackerKind::GfAttack(GfAttackConfig {
                rate,
                ..Default::default()
            }),
            AttackerKind::Peega(PeegaConfig {
                rate,
                ..Default::default()
            }),
        ]
    }

    /// Instantiates the attacker.
    pub fn build(&self) -> Box<dyn Attacker> {
        match self.clone() {
            AttackerKind::Pgd(c) => Box::new(PgdAttack::new(c)),
            AttackerKind::MinMax(c) => Box::new(MinMaxAttack::new(c)),
            AttackerKind::Metattack(c) => Box::new(Metattack::new(c)),
            AttackerKind::GfAttack(c) => Box::new(GfAttack::new(c)),
            AttackerKind::Peega(c) => Box::new(Peega::new(c)),
            AttackerKind::Random(c) => Box::new(RandomAttack::new(c)),
            AttackerKind::Dice(c) => Box::new(Dice::new(c)),
            AttackerKind::PeegaParallel(c) => Box::new(PeegaParallel::new(c)),
            AttackerKind::TargetedPeega(c) => Box::new(TargetedPeega::new(c)),
        }
    }

    /// Display name (matches [`Attacker::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            AttackerKind::Pgd(_) => "PGD",
            AttackerKind::MinMax(_) => "MinMax",
            AttackerKind::Metattack(_) => "Metattack",
            AttackerKind::GfAttack(_) => "GF-Attack",
            AttackerKind::Peega(_) => "PEEGA",
            AttackerKind::Random(_) => "Random",
            AttackerKind::Dice(_) => "DICE",
            AttackerKind::PeegaParallel(_) => "PEEGA-P",
            AttackerKind::TargetedPeega(_) => "PEEGA-T",
        }
    }
}

/// Every attacker name [`attacker_by_name`] resolves, in registry order.
pub const ATTACKER_NAMES: [&str; 9] = [
    "PGD",
    "MinMax",
    "Metattack",
    "GF-Attack",
    "PEEGA",
    "Random",
    "DICE",
    "PEEGA-P",
    "PEEGA-T",
];

/// Resolves an attacker by its display name at perturbation rate `rate`,
/// with the same per-attacker tuning as [`AttackerKind::paper_rows`].
/// `PEEGA-T` resolves with an empty victim set and the Nettack per-victim
/// degree budget — callers wanting specific victims construct
/// [`AttackerKind::TargetedPeega`] directly.
///
/// Unknown names are [`InvalidConfig`](BbgnnError::InvalidConfig) naming
/// the `attack` field — a malformed job spec must never panic the server.
pub fn attacker_by_name(name: &str, rate: f64) -> BbgnnResult<AttackerKind> {
    let kind = match name {
        "PGD" => AttackerKind::Pgd(PgdConfig {
            rate,
            ..Default::default()
        }),
        "MinMax" => AttackerKind::MinMax(MinMaxConfig {
            rate,
            ..Default::default()
        }),
        "Metattack" => AttackerKind::Metattack(MetattackConfig {
            rate,
            retrain_every: 5,
            ..Default::default()
        }),
        "GF-Attack" => AttackerKind::GfAttack(GfAttackConfig {
            rate,
            ..Default::default()
        }),
        "PEEGA" => AttackerKind::Peega(PeegaConfig {
            rate,
            ..Default::default()
        }),
        "Random" => AttackerKind::Random(RandomAttackConfig {
            rate,
            ..Default::default()
        }),
        "DICE" => AttackerKind::Dice(DiceConfig {
            rate,
            ..Default::default()
        }),
        "PEEGA-P" => AttackerKind::PeegaParallel(PeegaParallelConfig {
            rate,
            ..Default::default()
        }),
        "PEEGA-T" => AttackerKind::TargetedPeega(TargetedPeegaConfig::degree_budget(
            Vec::new(),
            PeegaConfig {
                rate,
                ..Default::default()
            },
        )),
        other => {
            return Err(BbgnnError::InvalidConfig {
                what: "attack".to_string(),
                message: format!(
                    "unknown attacker {other:?}; known: {}",
                    ATTACKER_NAMES.join(", ")
                ),
            })
        }
    };
    Ok(kind)
}

/// Every model column of Tables IV–VI: the two raw GNNs and the six
/// defenders.
#[derive(Clone, Debug)]
pub enum DefenderKind {
    /// Raw GCN.
    Gcn,
    /// Raw GAT.
    Gat,
    /// GCN-Jaccard preprocessing defense.
    GcnJaccard(GcnJaccardConfig),
    /// GCN-SVD low-rank defense.
    GcnSvd(GcnSvdConfig),
    /// RGCN Gaussian defense.
    Rgcn(RgcnConfig),
    /// Pro-GNN structure-learning defense.
    ProGnn(ProGnnConfig),
    /// SimPGCN similarity-preserving defense.
    SimPGcn(SimPGcnConfig),
    /// GNAT (the paper's defender).
    Gnat(GnatConfig),
}

impl DefenderKind {
    /// The paper's column order for a dataset; `identity_features` drops
    /// GCN-Jaccard and GNAT's feature view (the Polblogs case, Table VI).
    pub fn paper_columns(identity_features: bool) -> Vec<DefenderKind> {
        let mut cols = vec![DefenderKind::Gcn, DefenderKind::Gat];
        if !identity_features {
            cols.push(DefenderKind::GcnJaccard(GcnJaccardConfig::default()));
        }
        cols.push(DefenderKind::GcnSvd(GcnSvdConfig::default()));
        cols.push(DefenderKind::Rgcn(RgcnConfig::default()));
        cols.push(DefenderKind::ProGnn(ProGnnConfig::default()));
        cols.push(DefenderKind::SimPGcn(SimPGcnConfig::default()));
        cols.push(DefenderKind::Gnat(if identity_features {
            // Dense identity-feature graphs (Polblogs): 2-hop reachability
            // saturates, so the topology view uses 1 hop.
            GnatConfig {
                k_t: 1,
                ..GnatConfig::without_feature_view()
            }
        } else {
            GnatConfig::default()
        }));
        cols
    }

    /// Instantiates the defender with the given training configuration
    /// (the defender-specific hyper-parameters come from the variant's own
    /// config; `train` controls epochs/lr/seed so repeated runs differ only
    /// by seed).
    pub fn build(&self, train: TrainConfig) -> Box<dyn Defender> {
        match self.clone() {
            DefenderKind::Gcn => Box::new(Gcn::paper_default(train)),
            DefenderKind::Gat => Box::new(Gat::paper_default(train)),
            DefenderKind::GcnJaccard(c) => {
                Box::new(GcnJaccard::new(GcnJaccardConfig { train, ..c }))
            }
            DefenderKind::GcnSvd(c) => Box::new(GcnSvd::new(GcnSvdConfig { train, ..c })),
            DefenderKind::Rgcn(c) => Box::new(Rgcn::new(RgcnConfig { train, ..c })),
            DefenderKind::ProGnn(c) => Box::new(ProGnn::new(ProGnnConfig { train, ..c })),
            DefenderKind::SimPGcn(c) => Box::new(SimPGcn::new(SimPGcnConfig { train, ..c })),
            DefenderKind::Gnat(c) => Box::new(Gnat::new(GnatConfig { train, ..c })),
        }
    }

    /// Display name (matches [`Defender::name`]).
    pub fn name(&self) -> String {
        match self {
            DefenderKind::Gcn => "GCN".to_string(),
            DefenderKind::Gat => "GAT".to_string(),
            DefenderKind::GcnJaccard(_) => "GCN-Jaccard".to_string(),
            DefenderKind::GcnSvd(_) => "GCN-SVD".to_string(),
            DefenderKind::Rgcn(_) => "RGCN".to_string(),
            DefenderKind::ProGnn(_) => "Pro-GNN".to_string(),
            DefenderKind::SimPGcn(_) => "SimPGCN".to_string(),
            DefenderKind::Gnat(c) => Gnat::new(c.clone()).name(),
        }
    }
}

/// Every model/defender name [`defender_by_name`] resolves, in the paper's
/// column order.
pub const DEFENDER_NAMES: [&str; 8] = [
    "GCN",
    "GAT",
    "GCN-Jaccard",
    "GCN-SVD",
    "RGCN",
    "Pro-GNN",
    "SimPGCN",
    "GNAT",
];

/// Resolves a model column by its display name. `identity_features`
/// applies the Polblogs convention to GNAT (1-hop topology view, no
/// feature view) exactly like [`DefenderKind::paper_columns`]; the other
/// columns are their defaults regardless.
///
/// Unknown names are [`InvalidConfig`](BbgnnError::InvalidConfig) naming
/// the `defense` field — a malformed job spec must never panic the server.
pub fn defender_by_name(name: &str, identity_features: bool) -> BbgnnResult<DefenderKind> {
    let kind = match name {
        "GCN" => DefenderKind::Gcn,
        "GAT" => DefenderKind::Gat,
        "GCN-Jaccard" => DefenderKind::GcnJaccard(GcnJaccardConfig::default()),
        "GCN-SVD" => DefenderKind::GcnSvd(GcnSvdConfig::default()),
        "RGCN" => DefenderKind::Rgcn(RgcnConfig::default()),
        "Pro-GNN" => DefenderKind::ProGnn(ProGnnConfig::default()),
        "SimPGCN" => DefenderKind::SimPGcn(SimPGcnConfig::default()),
        "GNAT" => DefenderKind::Gnat(if identity_features {
            GnatConfig {
                k_t: 1,
                ..GnatConfig::without_feature_view()
            }
        } else {
            GnatConfig::default()
        }),
        other => {
            return Err(BbgnnError::InvalidConfig {
                what: "defense".to_string(),
                message: format!(
                    "unknown model/defender {other:?}; known: {}",
                    DEFENDER_NAMES.join(", ")
                ),
            })
        }
    };
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn paper_rows_cover_all_five_attackers() {
        let rows = AttackerKind::paper_rows(0.1);
        let names: Vec<&str> = rows.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec!["PGD", "MinMax", "Metattack", "GF-Attack", "PEEGA"]
        );
    }

    #[test]
    fn paper_columns_respect_identity_features() {
        let with = DefenderKind::paper_columns(false);
        assert_eq!(with.len(), 8);
        assert!(with.iter().any(|d| d.name() == "GCN-Jaccard"));
        let without = DefenderKind::paper_columns(true);
        assert_eq!(without.len(), 7);
        assert!(!without.iter().any(|d| d.name() == "GCN-Jaccard"));
        assert_eq!(without.last().unwrap().name(), "GNAT-t+e");
    }

    #[test]
    fn every_kind_builds_and_names_consistently() {
        for kind in AttackerKind::paper_rows(0.05) {
            assert_eq!(kind.build().name(), kind.name());
        }
        for kind in DefenderKind::paper_columns(false) {
            let built = kind.build(TrainConfig::fast_test());
            assert_eq!(built.name(), kind.name());
        }
    }

    #[test]
    fn built_defender_trains_end_to_end() {
        // Scale 0.08: at 0.05 the graph is small enough that accuracy
        // swings with the RNG stream (the vendored PRNG differs from
        // upstream rand's), making the threshold flaky.
        let g = DatasetSpec::CoraLike.generate(0.08, 161);
        let mut d = DefenderKind::Gcn.build(TrainConfig::fast_test());
        d.fit(&g);
        assert!(d.test_accuracy(&g) > 0.4);
    }

    #[test]
    fn every_attacker_resolves_by_name_and_round_trips() {
        for name in ATTACKER_NAMES {
            let kind = attacker_by_name(name, 0.1).unwrap();
            assert_eq!(kind.name(), name);
            // The built attacker agrees with the registry on its name.
            assert_eq!(kind.build().name(), name);
        }
    }

    #[test]
    fn every_defender_resolves_by_name_and_round_trips() {
        for name in DEFENDER_NAMES {
            let kind = defender_by_name(name, false).unwrap();
            // GNAT's concrete display name carries its view suffix.
            if name == "GNAT" {
                assert!(kind.name().starts_with("GNAT"));
            } else {
                assert_eq!(kind.name(), name);
            }
            let built = kind.build(TrainConfig::fast_test());
            assert_eq!(built.name(), kind.name());
        }
    }

    #[test]
    fn by_name_resolution_matches_paper_tuning() {
        // The by-name path must produce the same configs as paper_rows so
        // a served job reproduces the CLI tables bit for bit.
        for row in AttackerKind::paper_rows(0.1) {
            let by_name = attacker_by_name(row.name(), 0.1).unwrap();
            assert_eq!(format!("{row:?}"), format!("{by_name:?}"));
        }
        for identity in [false, true] {
            let cols = DefenderKind::paper_columns(identity);
            let gnat = cols.last().unwrap();
            let by_name = defender_by_name("GNAT", identity).unwrap();
            assert_eq!(format!("{gnat:?}"), format!("{by_name:?}"));
        }
    }

    #[test]
    fn unknown_names_are_invalid_config_not_panics() {
        match attacker_by_name("Nettack", 0.1) {
            Err(BbgnnError::InvalidConfig { what, message }) => {
                assert_eq!(what, "attack");
                assert!(message.contains("Nettack"), "message names it: {message}");
                assert!(message.contains("PEEGA"), "message lists options");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        match defender_by_name("Jaccard", false) {
            Err(BbgnnError::InvalidConfig { what, message }) => {
                assert_eq!(what, "defense");
                assert!(message.contains("Jaccard"), "message names it: {message}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
