//! Quickstart: attack a citation graph with PEEGA, then defend with GNAT.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bbgnn::prelude::*;

fn main() {
    // A Cora-calibrated synthetic citation graph at 15% of full size, so
    // the whole example runs in seconds.
    let graph = DatasetSpec::CoraLike.generate(0.15, 42);
    println!(
        "graph: {} nodes, {} edges, {} classes, homophily {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes,
        edge_homophily(&graph)
    );

    // Baseline: the paper's 2-layer GCN on the clean graph.
    let train = TrainConfig::default();
    let mut gcn = Gcn::paper_default(train.clone());
    gcn.fit(&graph);
    let clean_acc = gcn.test_accuracy(&graph);
    println!("GCN on clean graph:     accuracy {:.4}", clean_acc);

    // PEEGA black-box attack at 10% perturbation rate. It reads only the
    // adjacency matrix and the features — no labels, no model parameters.
    let mut attacker = Peega::new(PeegaConfig {
        rate: 0.1,
        ..Default::default()
    });
    let result = attacker.attack(&graph);
    println!(
        "PEEGA: {} edge flips + {} feature flips in {:.2}s",
        result.edge_flips,
        result.feature_flips,
        result.elapsed.as_secs_f64()
    );
    let poisoned = result.poisoned;

    // The same GCN trained on the poisoned graph degrades…
    let mut gcn_poisoned = Gcn::paper_default(train.clone());
    gcn_poisoned.fit(&poisoned);
    let attacked_acc = gcn_poisoned.test_accuracy(&poisoned);
    println!("GCN on poisoned graph:  accuracy {:.4}", attacked_acc);

    // …while GNAT's three augmented views recover most of it.
    let mut gnat = Gnat::new(GnatConfig {
        train,
        ..Default::default()
    });
    gnat.fit(&poisoned);
    let defended_acc = gnat.test_accuracy(&poisoned);
    println!("GNAT on poisoned graph: accuracy {:.4}", defended_acc);

    println!(
        "\nattack cost {:.1}% accuracy; GNAT recovered {:.1}% of the damage",
        100.0 * (clean_acc - attacked_acc),
        if clean_acc > attacked_acc {
            100.0 * (defended_acc - attacked_acc) / (clean_acc - attacked_acc)
        } else {
            0.0
        }
    );
}
