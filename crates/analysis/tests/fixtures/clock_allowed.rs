// Fixture: a justified clock read (report-only timing) is waivable.
use std::time::Instant;

pub fn timed() -> f64 {
    // lint: allow(clock) reason=fixture - elapsed time is report-only
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
