//! Fig. 8 — PEEGA hyper-parameter sensitivity: the self/global trade-off
//! λ and the norm order p, evaluated by GCN accuracy on the poisoned
//! graphs of all three datasets.
//!
//! Reproduction targets: (a) accuracy dips at an intermediate λ (the
//! global view helps, but too much of it backfires) with the best λ for
//! Polblogs larger than for Cora/Citeseer; (b) p = 2 is best on
//! Cora/Citeseer while Polblogs prefers p = 1.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::gcn_accuracy};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig8_lambda_p"));
    let specs = DatasetSpec::paper_datasets();
    let graphs: Vec<(String, Graph)> = specs
        .iter()
        .map(|s| (s.name().to_string(), s.generate(cfg.scale, cfg.seed)))
        .collect();

    println!("\n--- Fig 8(a): λ sweep (GCN accuracy under PEEGA) ---\n");
    let mut headers = vec!["lambda".to_string()];
    headers.extend(graphs.iter().map(|(n, _)| n.clone()));
    let mut table_a = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for &lambda in &[0.0, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03] {
        let mut cells = vec![format!("{lambda}")];
        for (_, g) in &graphs {
            let mut atk = Peega::new(PeegaConfig {
                rate: cfg.rate,
                lambda,
                ..Default::default()
            });
            let poisoned = atk.attack(g).poisoned;
            cells.push(gcn_accuracy(&poisoned, cfg.runs, cfg.seed).to_string());
        }
        eprintln!("[lambda {lambda} done]");
        table_a.push_row(cells);
    }
    table_a.emit(&cfg.out_dir, "fig8a_lambda");

    println!("\n--- Fig 8(b): p sweep (GCN accuracy under PEEGA) ---\n");
    let mut headers_b = vec!["p".to_string()];
    headers_b.extend(graphs.iter().map(|(n, _)| n.clone()));
    let mut table_b = Table::new(&headers_b.iter().map(String::as_str).collect::<Vec<_>>());
    for &p in &[1.0, 2.0, 3.0] {
        let mut cells = vec![format!("{p}")];
        for (_, g) in &graphs {
            let mut atk = Peega::new(PeegaConfig {
                rate: cfg.rate,
                p,
                ..Default::default()
            });
            let poisoned = atk.attack(g).poisoned;
            cells.push(gcn_accuracy(&poisoned, cfg.runs, cfg.seed).to_string());
        }
        eprintln!("[p {p} done]");
        table_b.push_row(cells);
    }
    table_b.emit(&cfg.out_dir, "fig8b_norm_p");
    println!("\npaper: λ has an interior optimum; p = 2 wins except on Polblogs (p = 1).");
}
