//! Table rendering and result persistence.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A printable table with a header row and string cells, plus CSV dumping.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (ragged rows are padded when printed).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with fixed-width columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - cell.chars().count();
                if i == 0 {
                    let _ = write!(out, "{cell}{}", " ".repeat(pad));
                } else {
                    let _ = write!(out, "  {}{cell}", " ".repeat(pad));
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            fmt_row(&mut out, r);
        }
        out
    }

    /// Renders to CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table and writes `<out_dir>/<name>.csv`.
    pub fn emit(&self, out_dir: &str, name: &str) {
        print!("{}", self.render());
        let dir = Path::new(out_dir);
        if fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[csv written to {}]", path.display());
            }
        }
    }
}

/// Marks the best (extreme) numeric cell per row among `candidate_cols`
/// with the given bracket, mimicking the paper's bold/parenthesis marks.
/// `maximize` selects whether the largest or the smallest value wins.
pub fn mark_extreme(
    table: &mut Table,
    candidate_cols: &[usize],
    maximize: bool,
    brackets: (&str, &str),
) {
    for row in &mut table.rows {
        let mut best: Option<(usize, f64)> = None;
        for &c in candidate_cols {
            if let Some(cell) = row.get(c) {
                let parsed = cell
                    .split('±')
                    .next()
                    .and_then(|s| s.trim().parse::<f64>().ok());
                if let Some(v) = parsed {
                    let better = match best {
                        None => true,
                        Some((_, b)) => {
                            if maximize {
                                v > b
                            } else {
                                v < b
                            }
                        }
                    };
                    if better {
                        best = Some((c, v));
                    }
                }
            }
        }
        if let Some((c, _)) = best {
            row[c] = format!("{}{}{}", brackets.0, row[c], brackets.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a,b"]);
        t.push_row(vec!["x\"y".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn mark_extreme_marks_max() {
        let mut t = Table::new(&["row", "m1", "m2"]);
        t.push_row(vec!["r".into(), "75.31±0.75".into(), "83.12±0.43".into()]);
        mark_extreme(&mut t, &[1, 2], true, ("(", ")"));
        assert_eq!(t.rows[0][2], "(83.12±0.43)");
        assert_eq!(t.rows[0][1], "75.31±0.75");
    }

    #[test]
    fn mark_extreme_marks_min() {
        let mut t = Table::new(&["row", "m1", "m2"]);
        t.push_row(vec!["r".into(), "75.31".into(), "83.12".into()]);
        mark_extreme(&mut t, &[1, 2], false, ("**", "**"));
        assert_eq!(t.rows[0][1], "**75.31**");
    }
}
