//! `bbgnn_analysis` — hand-rolled static analysis for the bbgnn workspace.
//!
//! The reproduction's headline contract — PEEGA/GNAT results are bitwise
//! identical across thread counts and with tracing on or off (DESIGN.md
//! §7–§8) — rests on a handful of invariants that used to live in prose:
//! no FMA contraction, no iteration over seeded hash collections in
//! numeric paths, no clock reads outside the observability layer,
//! disjoint-row `unsafe` confined to the kernel file, no panics in
//! library code, and obs names that match the documented taxonomy. This
//! crate turns those chapters into machine-checkable rules, enforced on
//! every PR by the `bbgnn-lint` binary (CI `analysis` job).
//!
//! The pass is a **zero-dependency, token-level lint** (see [`lexer`]): no
//! `syn`, no rustc internals, matching the workspace's no-external-deps
//! rule. What a lexer cannot see — actual data races, actual UB — is
//! covered dynamically by the Miri and ThreadSanitizer CI jobs this crate
//! ships alongside (DESIGN.md §9).
//!
//! The analysis runs in **two passes**. Pass one is per-file and
//! token-level. Pass two — new in lint v2 — parses items out of the same
//! token streams ([`parse`]), assembles a workspace **symbol graph**
//! ([`symbols`]: fns, structs + fields, impl blocks, an approximate
//! name-resolved call graph), and runs the **flow rules** ([`flow`]) over
//! it: `check_site` (§11 supervised loops), `key_fields` (§10/§12 store
//! anti-aliasing), `dead_taxonomy` (§8 closure in the doc→code
//! direction), and `hot_alloc` (§6 arena contract in kernel hot regions).
//!
//! Library layout:
//!
//! * [`lexer`] — comment- and string-aware Rust tokenizer;
//! * [`parse`] — recursive-descent item parser (fns, structs, calls);
//! * [`symbols`] — the workspace symbol graph and call-edge resolution;
//! * [`rules`] — the per-file rule engine ([`rules::lint_source`]);
//! * [`flow`] — the cross-file graph rules ([`flow::analyze`]);
//! * [`allow`] — the `// lint: allow(<rule>) reason=...` waiver syntax;
//! * [`taxonomy`] — the DESIGN.md §8 span/counter name taxonomy, parsed
//!   from the embedded document (also consumed by `bbgnn_bench::trace`);
//! * [`walk`] — deterministic workspace traversal driving both passes.

#![forbid(unsafe_code)]

pub mod allow;
pub mod flow;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod taxonomy;
pub mod walk;

pub use flow::{analyze, FlowReport};
pub use rules::{classify, lint_lexed, lint_source, FileKind, FileReport, Rule, Violation};
pub use symbols::Model;
pub use taxonomy::{parse_taxonomy, Taxonomy};
pub use walk::{lint_workspace, WorkspaceReport};
