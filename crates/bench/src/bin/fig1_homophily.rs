//! Fig. 1 — the proportion of edges whose endpoints share a label.
//!
//! The paper reports > 70.43% on five real datasets; our calibrated
//! generators must land on the same homophily levels, since both PEEGA's
//! global view and GNAT's augmentations rely on them. Two extra synthetic
//! datasets bracket the realistic range.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig1_homophily"));

    let mut table = Table::new(&["dataset", "nodes", "edges", "classes", "same-label edge %"]);
    let mut specs = DatasetSpec::paper_datasets();
    specs.push(DatasetSpec::Custom(SbmParams {
        nodes: 800,
        edges: 2400,
        classes: 3,
        homophily: 0.75,
        feature_dim: 128,
        active_features: 10,
        feature_purity: 0.8,
        train_frac: 0.1,
        valid_frac: 0.1,
    }));
    specs.push(DatasetSpec::Custom(SbmParams {
        nodes: 600,
        edges: 3000,
        classes: 4,
        homophily: 0.88,
        feature_dim: 96,
        active_features: 8,
        feature_purity: 0.85,
        train_frac: 0.1,
        valid_frac: 0.1,
    }));
    let names = ["cora", "citeseer", "polblogs", "synthetic-a", "synthetic-b"];
    for (spec, name) in specs.iter().zip(names) {
        let scale = if matches!(spec, DatasetSpec::Custom(_)) {
            1.0
        } else {
            cfg.scale
        };
        let g = spec.generate(scale, cfg.seed);
        table.push_row(vec![
            name.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            g.num_classes.to_string(),
            format!("{:.2}", 100.0 * edge_homophily(&g)),
        ]);
    }
    table.emit(&cfg.out_dir, "fig1_homophily");
    println!("\npaper: all five real datasets exceed 70.43% same-label edges.");
}
