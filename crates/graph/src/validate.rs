//! Graph-input validation.
//!
//! Every dataset that enters the pipeline — loaded from disk, generated
//! synthetically, or handed over by an attacker — can be checked against
//! the structural contract the models assume: finite (binary) features, no
//! undeclared self-loops, labels within `num_classes`, in-bounds edges and
//! split indices, and a symmetric adjacency. Violations surface as
//! [`BbgnnError::InvalidGraph`] carrying the *first* offending node or
//! edge, so a corrupted input names itself instead of panicking three
//! crates downstream.

use crate::splits::Split;
use crate::Graph;
use bbgnn_errors::{BbgnnError, BbgnnResult};
use bbgnn_linalg::{CsrMatrix, DenseMatrix};

/// What a dataset is allowed to contain. The default is the paper's
/// contract: simple undirected graphs without self-loops.
#[derive(Clone, Debug, Default)]
pub struct ValidationPolicy {
    /// Accept self-loop edges (they are still dropped from the stored
    /// adjacency, but their presence in the input is not an error).
    pub allow_self_loops: bool,
}

impl ValidationPolicy {
    /// Policy for inputs that declare self-loops as legitimate.
    pub fn with_self_loops() -> Self {
        Self {
            allow_self_loops: true,
        }
    }
}

/// Validates the raw pieces of a graph before construction. Returns the
/// first violation as [`BbgnnError::InvalidGraph`].
pub fn validate_parts(
    n: usize,
    edges: &[(usize, usize)],
    features: &DenseMatrix,
    labels: &[usize],
    num_classes: usize,
    split: &Split,
    policy: &ValidationPolicy,
) -> BbgnnResult<()> {
    if features.rows() != n {
        return Err(BbgnnError::InvalidGraph {
            reason: format!("feature matrix has {} rows for {n} nodes", features.rows()),
            node: None,
            edge: None,
        });
    }
    if labels.len() != n {
        return Err(BbgnnError::InvalidGraph {
            reason: format!("{} labels for {n} nodes", labels.len()),
            node: None,
            edge: None,
        });
    }
    for &(u, v) in edges {
        if u >= n || v >= n {
            return Err(BbgnnError::InvalidGraph {
                reason: format!("edge ({u}, {v}) out of bounds for {n} nodes"),
                node: None,
                edge: Some((u, v)),
            });
        }
        if u == v && !policy.allow_self_loops {
            return Err(BbgnnError::InvalidGraph {
                reason: format!("undeclared self-loop at node {u}"),
                node: Some(u),
                edge: Some((u, v)),
            });
        }
    }
    for (v, row) in (0..n).map(|v| (v, features.row(v))) {
        if let Some((col, value)) = row
            .iter()
            .enumerate()
            .find(|(_, x)| !x.is_finite())
            .map(|(j, &x)| (j, x))
        {
            return Err(BbgnnError::InvalidGraph {
                reason: format!("non-finite feature {value} at node {v}, column {col}"),
                node: Some(v),
                edge: None,
            });
        }
    }
    if let Some((v, &y)) = labels.iter().enumerate().find(|(_, &y)| y >= num_classes) {
        return Err(BbgnnError::InvalidGraph {
            reason: format!("label {y} at node {v} exceeds num_classes = {num_classes}"),
            node: Some(v),
            edge: None,
        });
    }
    for (name, set) in [
        ("train", &split.train),
        ("valid", &split.valid),
        ("test", &split.test),
    ] {
        if let Some(&v) = set.iter().find(|&&v| v >= n) {
            return Err(BbgnnError::InvalidGraph {
                reason: format!("{name} split references node {v} of {n}"),
                node: Some(v),
                edge: None,
            });
        }
    }
    Ok(())
}

/// Validates that a CSR adjacency is symmetric, reporting the first
/// asymmetric pair as [`BbgnnError::InvalidGraph`].
pub fn validate_symmetric(adj: &CsrMatrix) -> BbgnnResult<()> {
    if adj.rows() != adj.cols() {
        return Err(BbgnnError::InvalidGraph {
            reason: format!("adjacency is {}x{}, not square", adj.rows(), adj.cols()),
            node: None,
            edge: None,
        });
    }
    for u in 0..adj.rows() {
        for (v, w) in adj.row_iter(u) {
            let wt = adj.get(v, u);
            if (w - wt).abs() > 1e-12 {
                return Err(BbgnnError::InvalidGraph {
                    reason: format!("asymmetric adjacency: A[{u},{v}] = {w} but A[{v},{u}] = {wt}"),
                    node: None,
                    edge: Some((u, v)),
                });
            }
        }
    }
    Ok(())
}

/// Validates an already-constructed [`Graph`] (features, labels, splits;
/// the stored adjacency is symmetric and loop-free by construction).
pub fn validate_graph(g: &Graph) -> BbgnnResult<()> {
    validate_parts(
        g.num_nodes(),
        &[],
        &g.features,
        &g.labels,
        g.num_classes,
        &g.split,
        &ValidationPolicy::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    type Parts = (
        usize,
        Vec<(usize, usize)>,
        DenseMatrix,
        Vec<usize>,
        usize,
        Split,
    );

    fn parts() -> Parts {
        (
            4,
            vec![(0, 1), (1, 2), (2, 3)],
            DenseMatrix::identity(4),
            vec![0, 1, 0, 1],
            2,
            Split::trivial(4),
        )
    }

    #[test]
    fn clean_parts_validate() {
        let (n, e, x, y, k, s) = parts();
        assert!(validate_parts(n, &e, &x, &y, k, &s, &ValidationPolicy::default()).is_ok());
    }

    #[test]
    fn nan_feature_names_first_offending_node() {
        let (n, e, mut x, y, k, s) = parts();
        x.set(2, 1, f64::NAN);
        match validate_parts(n, &e, &x, &y, k, &s, &ValidationPolicy::default()) {
            Err(BbgnnError::InvalidGraph {
                node: Some(2),
                reason,
                ..
            }) => {
                assert!(
                    reason.contains("column 1"),
                    "reason must locate the bit: {reason}"
                );
            }
            other => panic!("expected InvalidGraph at node 2, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_rejected_unless_declared() {
        let (n, mut e, x, y, k, s) = parts();
        e.push((3, 3));
        assert!(matches!(
            validate_parts(n, &e, &x, &y, k, &s, &ValidationPolicy::default()),
            Err(BbgnnError::InvalidGraph {
                edge: Some((3, 3)),
                ..
            })
        ));
        assert!(validate_parts(n, &e, &x, &y, k, &s, &ValidationPolicy::with_self_loops()).is_ok());
    }

    #[test]
    fn out_of_range_label_names_node() {
        let (n, e, x, mut y, k, s) = parts();
        y[1] = 7;
        assert!(matches!(
            validate_parts(n, &e, &x, &y, k, &s, &ValidationPolicy::default()),
            Err(BbgnnError::InvalidGraph { node: Some(1), .. })
        ));
    }

    #[test]
    fn split_out_of_bounds_is_invalid() {
        let (n, e, x, y, k, mut s) = parts();
        s.test.push(99);
        assert!(validate_parts(n, &e, &x, &y, k, &s, &ValidationPolicy::default()).is_err());
    }

    #[test]
    fn asymmetric_adjacency_names_edge() {
        let adj = CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0)]);
        assert!(matches!(
            validate_symmetric(&adj),
            Err(BbgnnError::InvalidGraph {
                edge: Some((0, 1)),
                ..
            })
        ));
        let sym = CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(validate_symmetric(&sym).is_ok());
    }
}
