//! Defend a social (blog) network against a black-box attack.
//!
//! Polblogs-style scenario: two communities, identity features (only the
//! topology is informative). PEEGA poisons the graph; every defender of
//! Table VI is trained on the poisoned graph and compared. Feature-based
//! defenses (GCN-Jaccard, GNAT's feature view) are inapplicable here —
//! exactly the situation the paper notes for Polblogs.
//!
//! ```sh
//! cargo run --release --example social_defense
//! ```

use bbgnn::prelude::*;

fn main() {
    let graph = DatasetSpec::PolblogsLike.generate(0.2, 3);
    println!(
        "blog network: {} nodes, {} edges, homophily {:.2} (identity features)\n",
        graph.num_nodes(),
        graph.num_edges(),
        edge_homophily(&graph)
    );

    let mut attacker = Peega::new(PeegaConfig {
        rate: 0.1,
        ..Default::default()
    });
    let result = attacker.attack(&graph);
    println!(
        "PEEGA poisoned the graph: {} edge flips in {:.2}s\n",
        result.edge_flips,
        result.elapsed.as_secs_f64()
    );
    let poisoned = result.poisoned;

    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "model", "clean", "poisoned", "train(s)"
    );
    for kind in DefenderKind::paper_columns(true) {
        let mut on_clean = kind.build(TrainConfig::default());
        on_clean.fit(&graph);
        let clean_acc = on_clean.test_accuracy(&graph);

        let mut on_poisoned = kind.build(TrainConfig::default());
        let report = on_poisoned.fit(&poisoned);
        let poisoned_acc = on_poisoned.test_accuracy(&poisoned);
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>9.2}",
            kind.name(),
            clean_acc,
            poisoned_acc,
            report.seconds
        );
    }
    println!("\nGNAT (here GNAT-t+e, feature view disabled) should hold the highest");
    println!("poisoned-graph accuracy at near-GCN training cost (Tables VI & VIII).");
}
