//! Fig. 5 — ablation on PEEGA's attack types.
//!
//! (a) PEEGA restricted to feature perturbations (FP), topology
//!     modifications (TM), and both (TM+FP) across perturbation rates,
//!     evaluated by GCN accuracy. Target: TM ≈ TM+FP ≪ FP in attack
//!     strength (feature flips contribute little at equal cost).
//! (b) Feature-cost sweep β ∈ {0.1, …, 1.0} with `S_f = S_f / β`: the
//!     number of feature vs. topology modifications, and the GCN / GNAT
//!     accuracy per β. Target: feature modifications decrease with β; GCN
//!     accuracy dips at intermediate β; GNAT stays flat and on top.
//!
//! Each attack+evaluate unit is fault-isolated and checkpointed to
//! `results/fig5_attack_ablation.checkpoint.json` for crash-safe resume.

use bbgnn::prelude::*;
use bbgnn_bench::{
    config::ExpConfig,
    fault::{CellValue, FaultRunner},
    report::Table,
    runner::evaluate_defender_checked,
};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("fig5_attack_ablation"));
    let g = DatasetSpec::CoraLike.generate(cfg.scale, cfg.seed);
    let mut harness = FaultRunner::new(&cfg, "fig5_attack_ablation");

    // ---- (a) attack-space ablation across rates -------------------------
    println!("\n--- Fig 5(a): GCN accuracy under PEEGA variants ---\n");
    let mut table_a = Table::new(&["rate", "FP", "TM", "TM+FP"]);
    for &rate in &[0.05, 0.1, 0.15, 0.2] {
        let mut cells = vec![format!("{rate}")];
        for (tag, space) in [
            ("FP", AttackSpace::FeatureOnly),
            ("TM", AttackSpace::TopologyOnly),
            ("TM+FP", AttackSpace::Both),
        ] {
            cells.push(harness.cell(&format!("a/r{rate}/{tag}"), cfg.seed, |seed| {
                let mut atk = Peega::new(PeegaConfig {
                    rate,
                    space,
                    ..Default::default()
                });
                let poisoned = atk.attack(&g).poisoned;
                let (stats, health) =
                    evaluate_defender_checked(&DefenderKind::Gcn, &poisoned, cfg.runs, seed);
                let text = stats.to_string();
                Ok(if health.is_degraded() {
                    CellValue::degraded(text)
                } else {
                    CellValue::clean(text)
                })
            }));
        }
        table_a.push_row(cells);
    }
    table_a.emit(&cfg.out_dir, "fig5a_attack_space");

    // ---- (b) feature-cost sweep -----------------------------------------
    println!(
        "\n--- Fig 5(b): feature-cost β sweep at rate {} ---\n",
        cfg.rate
    );
    let mut table_b = Table::new(&[
        "beta",
        "feature mods",
        "topology mods",
        "GCN acc",
        "GNAT acc",
    ]);
    for &beta in &[0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let keys: Vec<String> = ["fmods", "tmods", "gcn", "gnat"]
            .iter()
            .map(|k| format!("b/beta{beta}/{k}"))
            .collect();
        // One attack feeds all four cells of the row; skip it when the row
        // is fully checkpointed.
        let result = if keys.iter().all(|k| harness.is_done(k)) {
            None
        } else {
            let mut atk = Peega::new(PeegaConfig {
                rate: cfg.rate,
                beta,
                ..Default::default()
            });
            Some(atk.attack(&g))
        };
        let count_cell = |pick: fn(&AttackResult) -> usize| {
            let result = &result;
            move |_seed: u64| match result {
                Some(r) => Ok(CellValue::clean(pick(r).to_string())),
                // Unreachable: `result` is only None when every cell of the
                // row is cached, and cached cells never run their closure.
                None => Err(BbgnnError::ExperimentAborted {
                    cell: "fig5b".to_string(),
                    cause: "attack result missing for un-cached cell".to_string(),
                }),
            }
        };
        let fmods = harness.cell(&keys[0], cfg.seed, count_cell(|r| r.feature_flips));
        let tmods = harness.cell(&keys[1], cfg.seed, count_cell(|r| r.edge_flips));
        let eval_cell = |kind: DefenderKind| {
            let result = &result;
            move |seed: u64| match result {
                Some(r) => {
                    let (stats, health) =
                        evaluate_defender_checked(&kind, &r.poisoned, cfg.runs, seed);
                    let text = stats.to_string();
                    Ok(if health.is_degraded() {
                        CellValue::degraded(text)
                    } else {
                        CellValue::clean(text)
                    })
                }
                None => Err(BbgnnError::ExperimentAborted {
                    cell: "fig5b".to_string(),
                    cause: "attack result missing for un-cached cell".to_string(),
                }),
            }
        };
        let gcn = harness.cell(&keys[2], cfg.seed, eval_cell(DefenderKind::Gcn));
        let gnat = harness.cell(
            &keys[3],
            cfg.seed,
            eval_cell(DefenderKind::Gnat(GnatConfig::default())),
        );
        table_b.push_row(vec![format!("{beta}"), fmods, tmods, gcn, gnat]);
    }
    table_b.emit(&cfg.out_dir, "fig5b_beta_sweep");
    println!("\n{}", harness.summary());
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("paper: feature mods shrink as β grows; GNAT dominates GCN throughout.");
}
