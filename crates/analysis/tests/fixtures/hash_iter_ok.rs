// Fixture: membership-only use of hash collections is fine — the rule
// must not fire on insert/contains/len, or on iterating a Vec.
use std::collections::HashSet;

pub fn membership_only(pairs: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut seen = HashSet::new();
    let mut ordered = Vec::new();
    for &p in pairs {
        if seen.insert(p) {
            ordered.push(p);
        }
    }
    assert_eq!(seen.len(), ordered.len());
    ordered
}
