//! Graph container, edit operations, robustness metrics, and dataset
//! substrate for the `bbgnn` workspace.
//!
//! The paper's setting is semi-supervised node classification on an
//! undirected graph with binary node features ([`Graph`]). This crate
//! provides:
//!
//! * [`Graph`] — adjacency (undirected, unweighted), binary features,
//!   labels, and train/valid/test splits, plus the edit operations that
//!   attackers ([`Graph::flip_edge`]) and defenders
//!   ([`Graph::with_adjacency`]) perform;
//! * [`metrics`] — homophily (Fig. 1), edge-difference breakdowns
//!   (Fig. 2), and cross-label neighborhood similarity (Fig. 3);
//! * [`datasets`] — synthetic generators calibrated to the statistics of
//!   Cora, Citeseer, and Polblogs (Table III) plus a plain-text loader for
//!   user-provided real datasets.

#![deny(missing_docs)]

pub mod datasets;
pub mod graph;
pub mod metrics;
pub mod metrics_utility;
pub mod splits;
pub mod validate;

pub use graph::Graph;
pub use splits::Split;
pub use validate::ValidationPolicy;
