//! Symmetric eigendecomposition.
//!
//! * [`jacobi_eigen`] — cyclic Jacobi rotations; exact, cubic cost, used for
//!   small/medium symmetric matrices.
//! * [`lanczos_topk`] — Lanczos iteration with full reorthogonalization for
//!   the extremal eigenpairs of large sparse symmetric matrices; used by
//!   GF-Attack, which scores edge flips with the top of the normalized
//!   adjacency spectrum.

use crate::qr::thin_qr;
use crate::{CsrMatrix, DenseMatrix};

/// Eigendecomposition `A = Q Λ Q^T` of a symmetric matrix, eigenvalues
/// sorted descending.
#[derive(Clone, Debug)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the same order as `values`.
    pub vectors: DenseMatrix,
}

impl Eigen {
    /// Reconstructs `Q Λ Q^T`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let qs = self.vectors.scale_cols(&self.values);
        qs.matmul_nt(&self.vectors)
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is assumed, not checked (the upper
/// triangle is used).
pub fn jacobi_eigen(a: &DenseMatrix) -> Eigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "jacobi_eigen requires a square matrix");
    let mut m = a.clone();
    let mut q = DenseMatrix::identity(n);
    let max_sweeps = 60;
    let eps = 1e-12;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0_f64;
        for p in 0..n {
            for r in (p + 1)..n {
                off += m.get(p, r) * m.get(p, r);
            }
        }
        if off.sqrt() <= eps * a.frobenius_norm().max(1e-300) {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apr = m.get(p, r);
                if apr == 0.0 {
                    continue;
                }
                let app = m.get(p, p);
                let arr = m.get(r, r);
                let tau = (arr - app) / (2.0 * apr);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // M <- J^T M J where J rotates plane (p, r).
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkr = m.get(k, r);
                    m.set(k, p, c * mkp - s * mkr);
                    m.set(k, r, s * mkp + c * mkr);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mrk = m.get(r, k);
                    m.set(p, k, c * mpk - s * mrk);
                    m.set(r, k, s * mpk + c * mrk);
                }
                for k in 0..n {
                    let qkp = q.get(k, p);
                    let qkr = q.get(k, r);
                    q.set(k, p, c * qkp - s * qkr);
                    q.set(k, r, s * qkp + c * qkr);
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m.get(j, j).partial_cmp(&m.get(i, i)).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (out_col, &i) in order.iter().enumerate() {
        for k in 0..n {
            vectors.set(k, out_col, q.get(k, i));
        }
    }
    Eigen { values, vectors }
}

/// Lanczos iteration with full reorthogonalization: returns the `k`
/// algebraically largest eigenpairs of the symmetric sparse matrix `a`.
///
/// `k` is clamped to `n`. The Krylov dimension is `min(n, max(3k, k + 30))`.
/// Deterministic given `seed`.
pub fn lanczos_topk(a: &CsrMatrix, k: usize, seed: u64) -> Eigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lanczos_topk requires a square matrix");
    let k = k.min(n);
    let dim = n.min((3 * k).max(k + 30));
    // Build Krylov basis.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(dim);
    let mut alphas = Vec::with_capacity(dim);
    let mut betas = Vec::with_capacity(dim);
    let v0 = DenseMatrix::gaussian(n, 1, 1.0, seed).into_vec();
    let norm0 = v0.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut v: Vec<f64> = v0.iter().map(|x| x / norm0).collect();
    let mut v_prev = vec![0.0; n];
    let mut beta_prev = 0.0;
    for _j in 0..dim {
        basis.push(v.clone());
        let mut w = a.spmv(&v);
        let alpha: f64 = w.iter().zip(&v).map(|(&x, &y)| x * y).sum();
        for i in 0..n {
            w[i] -= alpha * v[i] + beta_prev * v_prev[i];
        }
        // Full reorthogonalization (twice for stability).
        for _ in 0..2 {
            for b in &basis {
                let proj: f64 = w.iter().zip(b).map(|(&x, &y)| x * y).sum();
                for i in 0..n {
                    w[i] -= proj * b[i];
                }
            }
        }
        alphas.push(alpha);
        let beta = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        betas.push(beta);
        if beta < 1e-12 {
            break;
        }
        v_prev = std::mem::replace(&mut v, w.iter().map(|x| x / beta).collect());
        beta_prev = beta;
    }
    let m = basis.len();
    // Tridiagonal matrix in the Krylov basis.
    let mut t = DenseMatrix::zeros(m, m);
    for j in 0..m {
        t.set(j, j, alphas[j]);
        if j + 1 < m {
            t.set(j, j + 1, betas[j]);
            t.set(j + 1, j, betas[j]);
        }
    }
    let tri = jacobi_eigen(&t);
    let kk = k.min(m);
    let mut vectors = DenseMatrix::zeros(n, kk);
    for c in 0..kk {
        for (j, b) in basis.iter().enumerate() {
            let w = tri.vectors.get(j, c);
            if w != 0.0 {
                for (i, &bi) in b.iter().enumerate() {
                    vectors.add_at(i, c, w * bi);
                }
            }
        }
    }
    // Re-orthonormalize the Ritz vectors (cheap, kk columns).
    let vectors = thin_qr(&vectors).q;
    Eigen { values: tri.values[..kk].to_vec(), vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> DenseMatrix {
        let mut a = DenseMatrix::uniform(n, n, 1.0, seed);
        a.symmetrize();
        a
    }

    #[test]
    fn jacobi_eigen_reconstructs() {
        let a = random_symmetric(10, 41);
        let e = jacobi_eigen(&a);
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn jacobi_eigen_orthonormal_and_sorted() {
        let a = random_symmetric(8, 42);
        let e = jacobi_eigen(&a);
        let gram = e.vectors.matmul_tn(&e.vectors);
        assert!(gram.max_abs_diff(&DenseMatrix::identity(8)) < 1e-9);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn jacobi_eigen_known_spectrum() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_is_eigenvalue_sum() {
        let a = random_symmetric(12, 43);
        let e = jacobi_eigen(&a);
        let trace: f64 = (0..12).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn lanczos_matches_jacobi_on_top_eigenpairs() {
        let dense = random_symmetric(30, 44);
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        let full = jacobi_eigen(&dense);
        let top = lanczos_topk(&sparse, 5, 7);
        for i in 0..5 {
            assert!(
                (full.values[i] - top.values[i]).abs() < 1e-6,
                "eigenvalue {i}: {} vs {}",
                full.values[i],
                top.values[i]
            );
        }
        // Eigenvectors match up to sign.
        for c in 0..5 {
            let dot: f64 = (0..30)
                .map(|i| full.vectors.get(i, c) * top.vectors.get(i, c))
                .sum();
            assert!(dot.abs() > 1.0 - 1e-5, "eigenvector {c} mismatch, |dot| = {}", dot.abs());
        }
    }

    #[test]
    fn lanczos_on_path_graph_spectrum() {
        // Path graph adjacency eigenvalues are 2cos(k*pi/(n+1)).
        let n = 20;
        let mut trips = Vec::new();
        for i in 0..n - 1 {
            trips.push((i, i + 1, 1.0));
            trips.push((i + 1, i, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, trips);
        let e = lanczos_topk(&a, 3, 2);
        let pi = std::f64::consts::PI;
        for (i, &val) in e.values.iter().enumerate() {
            let expected = 2.0 * ((i + 1) as f64 * pi / (n + 1) as f64).cos();
            assert!((val - expected).abs() < 1e-8, "{val} vs {expected}");
        }
    }
}
