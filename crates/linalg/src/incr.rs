//! Incremental recomputation engine for greedy attack loops.
//!
//! Every greedy attacker in the paper's matrix (PEEGA Alg. 1, Metattack,
//! GF-Attack) loops `flip one edge → rescore`, and the dominant rescore
//! cost is the surrogate propagation `H = Â_n^L X` — O(L·nnz·d) when
//! recomputed from scratch. But one undirected flip `{u, v}` changes Â_n
//! in exactly one row/col pair plus the entries renormalized by the new
//! `deg(u)`, `deg(v)`: only rows in the L-hop neighborhood of `u, v` can
//! change in `H`. [`IncrProp`] maintains `H` across committed flips by
//! recomputing exactly those rows — O(L·deg·d) per flip.
//!
//! **Determinism.** The engine does not apply additive deltas (which would
//! accumulate float drift); it *recomputes touched rows from scratch* in
//! the same ascending-CSR-column accumulation order as
//! [`crate::kernels::spmm_into`] / [`crate::kernels::spmm_ref`], with the
//! normalization weights computed exactly as
//! [`CsrMatrix::gcn_normalize`] computes them. Untouched rows keep their
//! bits by induction, so the maintained `H` is **bitwise identical to the
//! full recompute after every flip** — not merely eps-close. The periodic
//! resync (`resync_stride`) and the [`IncrConfig::shadow`] per-step
//! full-recompute check are defense-in-depth for that claim, not drift
//! repair; shadow mode asserts bitwise equality and is how the
//! equivalence property suite exercises the contract.
//!
//! [`IncrNorm`] is the adjacency-only half: it maintains the normalized
//! adjacency `Â_n` itself and can materialize a *virtually flipped*
//! `Â_n'` for a candidate edge in one O(n + nnz) pass — no graph clone,
//! no triplet sort — bitwise identical to rebuilding from the flipped
//! graph. GF-Attack's exact backend uses this per candidate so its seeded
//! Lanczos sees byte-identical input and therefore commits byte-identical
//! flips.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::kernels::{spmm_into, ThreadPool};
use crate::{CsrMatrix, DenseMatrix};

/// Process-global switch for the incremental path, set by the shared CLI
/// layer (`--incremental` / `BBGNN_INCR`). Off by default: attackers fall
/// back to the dense rescore loop. Like `--threads`, the flag never
/// changes result bytes — it is excluded from checkpoint fingerprints —
/// so flipping it on trades wall-clock only.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the incremental rescore path process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the incremental rescore path is enabled (`--incremental` /
/// `BBGNN_INCR=1`).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Default full-recompute resync stride: a full rebuild of `H` every this
/// many committed flips. The update rule is bitwise-exact, so the stride
/// is defense-in-depth (and the store checkpoint cadence), not a drift
/// bound — see DESIGN.md §13.
pub const DEFAULT_RESYNC_STRIDE: usize = 64;

/// Tuning knobs for [`IncrProp`].
#[derive(Clone, Debug)]
pub struct IncrConfig {
    /// Propagation depth `L` of the maintained `H = Â_n^L X`.
    pub hops: usize,
    /// Full recompute every `resync_stride` committed flips (`0` = never).
    pub resync_stride: usize,
    /// Shadow mode: after every update, recompute `H` from scratch and
    /// assert bitwise equality. O(L·nnz·d) per flip — debugging and the
    /// equivalence test-suite only.
    pub shadow: bool,
    /// Worker threads for full recomputes/resyncs (`0` = `BBGNN_THREADS`
    /// / available parallelism). Bitwise-irrelevant by the kernel
    /// determinism contract; wall-clock only.
    pub threads: usize,
}

impl IncrConfig {
    /// Defaults for a propagation depth of `hops`.
    pub fn new(hops: usize) -> Self {
        Self {
            hops,
            resync_stride: DEFAULT_RESYNC_STRIDE,
            shadow: false,
            threads: 0,
        }
    }

    /// [`new`](Self::new), then applies the `BBGNN_INCR_RESYNC` (stride,
    /// `0` = never) and `BBGNN_INCR_SHADOW` (`1`/`true`) environment
    /// overrides. Malformed values are loud errors naming the variable.
    pub fn from_env(hops: usize) -> Result<Self, String> {
        let mut cfg = Self::new(hops);
        if let Ok(v) = std::env::var("BBGNN_INCR_RESYNC") {
            cfg.resync_stride = v
                .trim()
                .parse()
                .map_err(|_| format!("BBGNN_INCR_RESYNC: expected an integer, got {v:?}"))?;
        }
        if let Ok(v) = std::env::var("BBGNN_INCR_SHADOW") {
            cfg.shadow = match v.trim() {
                "1" | "true" => true,
                "0" | "false" | "" => false,
                other => {
                    return Err(format!("BBGNN_INCR_SHADOW: expected 0/1, got {other:?}"));
                }
            };
        }
        Ok(cfg)
    }
}

/// Incrementally maintained GCN normalization `Â_n = D^{-1/2}(A+I)D^{-1/2}`.
///
/// Owns sorted adjacency lists (no self-loops — the `+I` is implicit, as
/// in [`CsrMatrix::gcn_normalize`]) plus the per-node `1/sqrt(deg+1)`
/// weights, and materializes CSR views bitwise identical to
/// `adjacency_csr().gcn_normalize()` without triplet sorting.
#[derive(Clone, Debug)]
pub struct IncrNorm {
    /// Sorted, self-loop-free, symmetric adjacency lists.
    nbrs: Vec<Vec<usize>>,
    /// `1/sqrt(deg+1)` per node, computed exactly as `gcn_normalize` does.
    inv_sqrt: Vec<f64>,
}

/// The `1/sqrt(d)` weight for a node of adjacency-list degree `deg`,
/// matching [`CsrMatrix::gcn_normalize`] bit for bit: the degree of
/// `A + I` is the exact small integer `deg + 1`, and `gcn_normalize`'s
/// `row_sums()` of ones produces the same exact value.
#[inline]
fn inv_sqrt_deg(deg: usize) -> f64 {
    let d = (deg + 1) as f64;
    if d > 0.0 {
        1.0 / d.sqrt()
    } else {
        0.0
    }
}

impl IncrNorm {
    /// Builds from an undirected edge list over `n` nodes. Duplicate
    /// edges are ignored; self-loops are rejected.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut nbrs = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n && u != v, "bad edge ({u},{v}) for n={n}");
            if let Err(pos) = nbrs[u].binary_search(&v) {
                nbrs[u].insert(pos, v);
            }
            if let Err(pos) = nbrs[v].binary_search(&u) {
                nbrs[v].insert(pos, u);
            }
        }
        Self::from_neighbor_lists(nbrs)
    }

    /// Builds from pre-sorted symmetric adjacency lists (the shape
    /// `Graph` hands over). Each list must be strictly ascending,
    /// in-bounds, and self-loop-free.
    pub fn from_neighbor_lists(nbrs: Vec<Vec<usize>>) -> Self {
        let n = nbrs.len();
        for (i, list) in nbrs.iter().enumerate() {
            let mut prev: Option<usize> = None;
            for &c in list {
                assert!(c < n && c != i, "bad neighbor {c} of node {i}");
                assert!(prev.map_or(true, |p| p < c), "unsorted neighbors of {i}");
                prev = Some(c);
            }
        }
        let inv_sqrt = nbrs.iter().map(|l| inv_sqrt_deg(l.len())).collect();
        Self { nbrs, inv_sqrt }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nbrs.len()
    }

    /// Whether edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.nbrs[u].binary_search(&v).is_ok()
    }

    /// Degree of `u` (self-loops excluded).
    pub fn degree(&self, u: usize) -> usize {
        self.nbrs[u].len()
    }

    /// Sorted neighbors of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.nbrs[u]
    }

    /// Toggles edge `{u, v}`, returning `true` when the edge now exists.
    /// O(deg) — a sorted-insert/remove pair plus two weight updates.
    pub fn flip_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u != v, "self-loop flip ({u},{u})");
        let added = match self.nbrs[u].binary_search(&v) {
            Ok(pos) => {
                self.nbrs[u].remove(pos);
                false
            }
            Err(pos) => {
                self.nbrs[u].insert(pos, v);
                true
            }
        };
        match self.nbrs[v].binary_search(&u) {
            Ok(pos) => {
                self.nbrs[v].remove(pos);
            }
            Err(pos) => {
                self.nbrs[v].insert(pos, u);
            }
        }
        self.inv_sqrt[u] = inv_sqrt_deg(self.nbrs[u].len());
        self.inv_sqrt[v] = inv_sqrt_deg(self.nbrs[v].len());
        added
    }

    /// Materializes `Â_n` as CSR, bitwise identical to
    /// `adjacency_csr().gcn_normalize()` on the same graph, in one
    /// O(n + nnz) pass (no triplet sort).
    pub fn normalized_csr(&self) -> CsrMatrix {
        self.build_csr(None)
    }

    /// Materializes `Â_n'` for the graph with edge `{u, v}` *virtually*
    /// flipped, without committing the flip: one O(n + nnz) pass,
    /// bitwise identical to flipping a graph clone and renormalizing.
    /// This is GF-Attack's per-candidate rescore path.
    pub fn flipped_normalized_csr(&self, u: usize, v: usize) -> CsrMatrix {
        assert!(u != v, "self-loop flip ({u},{u})");
        self.build_csr(Some((u.min(v), u.max(v))))
    }

    /// Shared CSR builder; `flip` virtually toggles one normalized edge
    /// `(u, v)` with `u < v`.
    fn build_csr(&self, flip: Option<(usize, usize)>) -> CsrMatrix {
        let n = self.nbrs.len();
        // Virtual weights under the flip; only u and v renormalize.
        let mut w_u = 0.0;
        let mut w_v = 0.0;
        let mut adding = false;
        if let Some((u, v)) = flip {
            adding = !self.has_edge(u, v);
            let flipped_deg = |deg: usize| if adding { deg + 1 } else { deg - 1 };
            w_u = inv_sqrt_deg(flipped_deg(self.nbrs[u].len()));
            w_v = inv_sqrt_deg(flipped_deg(self.nbrs[v].len()));
        }
        let weight = |w: usize| match flip {
            Some((u, _)) if w == u => w_u,
            Some((_, v)) if w == v => w_v,
            _ => self.inv_sqrt[w],
        };
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let nnz_hint: usize = self.nbrs.iter().map(|l| l.len() + 1).sum();
        let mut col_idx = Vec::with_capacity(nnz_hint + 2);
        let mut values = Vec::with_capacity(nnz_hint + 2);
        let mut cols_buf: Vec<usize> = Vec::new();
        for i in 0..n {
            let wi = weight(i);
            // Row i's column set: neighbors with the virtual toggle
            // applied (rows u and v gain or lose each other; every other
            // row keeps its columns), plus the implicit self-loop.
            let toggled = match flip {
                Some((u, v)) if i == u => Some(v),
                Some((u, v)) if i == v => Some(u),
                _ => None,
            };
            cols_buf.clear();
            cols_buf.extend_from_slice(&self.nbrs[i]);
            if let Some(t) = toggled {
                match cols_buf.binary_search(&t) {
                    Ok(pos) if !adding => {
                        cols_buf.remove(pos);
                    }
                    Err(pos) if adding => cols_buf.insert(pos, t),
                    _ => {}
                }
            }
            // Diagonal in ascending position (i is never its own neighbor).
            if let Err(pos) = cols_buf.binary_search(&i) {
                cols_buf.insert(pos, i);
            }
            for &c in &cols_buf {
                col_idx.push(c);
                values.push(wi * weight(c));
            }
            row_ptr.push(col_idx.len());
        }
        let csr = CsrMatrix::try_from_raw_parts(n, n, row_ptr, col_idx, values);
        // lint: allow(panic) reason=construction invariants guarantee sorted in-bounds columns; a failure here is a bug, not an input error
        csr.expect("IncrNorm built an invalid CSR")
    }

    /// FNV-1a fingerprint of the adjacency structure (sorted lists), used
    /// by the artifact-store keys that anti-alias incremental state.
    pub fn structure_hash(&self) -> u64 {
        let mut h = crate::content_hash::Fnv1a::new();
        h.bytes(b"incr-adj");
        h.usize(self.nbrs.len());
        for list in &self.nbrs {
            h.usize(list.len());
            h.usizes(list);
        }
        h.finish()
    }
}

/// Incrementally maintained surrogate propagation `H = Â_n^L X`.
///
/// Holds every intermediate hop `Â_n^k X` (`k = 1..=L`) plus an
/// [`IncrNorm`] adjacency mirror. [`flip_edge`](Self::flip_edge) and
/// [`set_feature`](Self::set_feature) commit one perturbation and repair
/// `H` by recomputing only the rows the flip can reach — the k-hop
/// frontier of `{u, v}` at hop `k` — in the exact accumulation order of
/// the full SpMM, so the maintained state is bitwise identical to a
/// from-scratch recompute after every commit (see the module docs).
#[derive(Clone, Debug)]
pub struct IncrProp {
    norm: IncrNorm,
    x: DenseMatrix,
    /// `h[k] = Â_n^{k+1} X`; empty when `hops == 0`.
    h: Vec<DenseMatrix>,
    hops: usize,
    resync_stride: usize,
    shadow: bool,
    threads: usize,
    step: usize,
    since_resync: usize,
    last_rows_touched: usize,
    resynced: bool,
}

impl IncrProp {
    /// Builds from an undirected edge list over `n` nodes and node
    /// features `x` (`n × d`), computing the initial `H` in full.
    pub fn from_edges(
        n: usize,
        edges: &[(usize, usize)],
        x: DenseMatrix,
        cfg: &IncrConfig,
    ) -> Self {
        Self::build(IncrNorm::from_edges(n, edges), x, cfg)
    }

    /// Builds from pre-sorted symmetric adjacency lists (the shape
    /// `Graph` hands over) and node features `x`.
    pub fn from_neighbor_lists(nbrs: Vec<Vec<usize>>, x: DenseMatrix, cfg: &IncrConfig) -> Self {
        Self::build(IncrNorm::from_neighbor_lists(nbrs), x, cfg)
    }

    /// [`from_neighbor_lists`](Self::from_neighbor_lists) with
    /// store-restored hop matrices instead of the initial full
    /// propagation. The caller's key must anti-alias the state (graph
    /// content hash + hops); shapes are validated, contents trusted
    /// bitwise.
    pub fn from_neighbor_lists_restored(
        nbrs: Vec<Vec<usize>>,
        x: DenseMatrix,
        cfg: &IncrConfig,
        h: Vec<DenseMatrix>,
    ) -> Result<Self, String> {
        let norm = IncrNorm::from_neighbor_lists(nbrs);
        if norm.num_nodes() != x.rows() {
            return Err("feature/adjacency row mismatch".to_string());
        }
        if h.len() != cfg.hops {
            return Err(format!(
                "expected {} hop matrices, got {}",
                cfg.hops,
                h.len()
            ));
        }
        for (k, m) in h.iter().enumerate() {
            if m.shape() != (x.rows(), x.cols()) {
                return Err(format!("hop {k} has shape {:?}", m.shape()));
            }
        }
        Ok(Self {
            norm,
            x,
            h,
            hops: cfg.hops,
            resync_stride: cfg.resync_stride,
            shadow: cfg.shadow,
            threads: cfg.threads,
            step: 0,
            since_resync: 0,
            last_rows_touched: 0,
            resynced: false,
        })
    }

    fn build(norm: IncrNorm, x: DenseMatrix, cfg: &IncrConfig) -> Self {
        assert_eq!(norm.num_nodes(), x.rows(), "feature/adjacency row mismatch");
        let h = Self::full_chain(&norm, &x, cfg.hops, cfg.threads);
        Self {
            norm,
            x,
            h,
            hops: cfg.hops,
            resync_stride: cfg.resync_stride,
            shadow: cfg.shadow,
            threads: cfg.threads,
            step: 0,
            since_resync: 0,
            last_rows_touched: 0,
            resynced: false,
        }
    }

    /// Full propagation chain `Â_n X, Â_n² X, …, Â_n^hops X` through the
    /// threaded SpMM — the same kernel path as `Graph::propagate`, so the
    /// result is bitwise identical to the dense rescore baseline.
    fn full_chain(
        norm: &IncrNorm,
        x: &DenseMatrix,
        hops: usize,
        threads: usize,
    ) -> Vec<DenseMatrix> {
        let an = norm.normalized_csr();
        let pool = if threads == 0 {
            ThreadPool::default()
        } else {
            ThreadPool::new(threads)
        };
        let mut out: Vec<DenseMatrix> = Vec::with_capacity(hops);
        for k in 0..hops {
            let prev = if k == 0 { x } else { &out[k - 1] };
            let mut next = DenseMatrix::zeros(an.rows(), x.cols());
            spmm_into(&an, prev, &mut next, &pool);
            out.push(next);
        }
        out
    }

    /// The maintained propagation `Â_n^hops X` (the features themselves
    /// when `hops == 0`).
    pub fn propagated(&self) -> &DenseMatrix {
        self.h.last().unwrap_or(&self.x)
    }

    /// The intermediate hop `Â_n^{k+1} X` (`k < hops`).
    pub fn hop(&self, k: usize) -> &DenseMatrix {
        &self.h[k]
    }

    /// Propagation depth `L`.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Current node features (reflecting committed feature flips).
    pub fn features(&self) -> &DenseMatrix {
        &self.x
    }

    /// The adjacency mirror (reflecting committed edge flips).
    pub fn norm(&self) -> &IncrNorm {
        &self.norm
    }

    /// Committed perturbations so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Rows recomputed by the most recent commit, summed over hops.
    pub fn last_rows_touched(&self) -> usize {
        self.last_rows_touched
    }

    /// Whether the most recent commit ended in a full resync — the
    /// artifact-store layer checkpoints the state exactly then.
    pub fn resynced(&self) -> bool {
        self.resynced
    }

    /// Fingerprint of the current state identity: adjacency structure,
    /// feature bits, depth, and step index. Store keys derive from this,
    /// so two different flip histories can never alias.
    pub fn state_hash(&self) -> u64 {
        let mut h = crate::content_hash::Fnv1a::new();
        h.bytes(b"incr-state");
        h.u64(self.norm.structure_hash());
        h.u64(self.x.content_hash());
        h.usize(self.hops);
        h.usize(self.step);
        h.finish()
    }

    /// The maintained hop matrices, for store serialization.
    pub fn hop_matrices(&self) -> &[DenseMatrix] {
        &self.h
    }

    /// Replaces the maintained hop matrices with store-restored ones
    /// (anti-aliased by [`state_hash`](Self::state_hash) at the key
    /// layer). Shapes are validated; contents are trusted bitwise.
    pub fn restore_state(&mut self, h: Vec<DenseMatrix>) -> Result<(), String> {
        if h.len() != self.hops {
            return Err(format!(
                "expected {} hop matrices, got {}",
                self.hops,
                h.len()
            ));
        }
        for (k, m) in h.iter().enumerate() {
            if m.shape() != (self.x.rows(), self.x.cols()) {
                return Err(format!("hop {k} has shape {:?}", m.shape()));
            }
        }
        self.h = h;
        self.since_resync = 0;
        Ok(())
    }

    /// Commits one undirected edge flip and repairs `H` incrementally.
    /// Returns `true` when the edge now exists. O(hops · |frontier| · d).
    pub fn flip_edge(&mut self, u: usize, v: usize) -> bool {
        let timer = bbgnn_obs::kernel_timer("incr/update");
        let added = self.norm.flip_edge(u, v);
        // Rows of Â_n that changed: u and v (their whole rows
        // renormalize) plus every current neighbor of either (the column
        // entries weighted by inv_sqrt[u] / inv_sqrt[v]). For a deletion
        // the lost neighbor is u or v itself — already in the set.
        let mut rows = vec![u, v];
        rows.extend_from_slice(self.norm.neighbors(u));
        rows.extend_from_slice(self.norm.neighbors(v));
        rows.sort_unstable();
        rows.dedup();
        self.cascade(rows);
        drop(timer);
        self.finish_commit();
        added
    }

    /// Commits one feature write `X[v][j] = value` and repairs `H`
    /// incrementally. Returns the previous value.
    pub fn set_feature(&mut self, v: usize, j: usize, value: f64) -> f64 {
        let timer = bbgnn_obs::kernel_timer("incr/update");
        let old = self.x.get(v, j);
        self.x.set(v, j, value);
        // Hop-1 rows reading X[v]: v itself (self-loop) and its neighbors.
        let mut rows = vec![v];
        rows.extend_from_slice(self.norm.neighbors(v));
        rows.sort_unstable();
        rows.dedup();
        self.cascade(rows);
        drop(timer);
        self.finish_commit();
        old
    }

    /// Recomputes the touched rows hop by hop, expanding the frontier by
    /// one adjacency step per hop (`U_k = U_{k-1} ∪ N(U_{k-1})`).
    fn cascade(&mut self, mut rows: Vec<usize>) {
        let mut touched = 0u64;
        for k in 0..self.hops {
            if k > 0 {
                rows = self.expand(&rows);
            }
            self.recompute_rows(k, &rows);
            touched += rows.len() as u64;
        }
        bbgnn_obs::counter("incr/rows_touched", touched);
        self.last_rows_touched = touched as usize;
    }

    /// `rows ∪ N(rows)`, sorted and deduplicated.
    fn expand(&self, rows: &[usize]) -> Vec<usize> {
        let mut out = rows.to_vec();
        for &i in rows {
            out.extend_from_slice(&self.norm.nbrs[i]);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Recomputes rows of `h[k]` from scratch: per output element one
    /// accumulator filled in ascending CSR-column order — the exact
    /// per-element chain of [`spmm_into`], so the recomputed rows carry
    /// the same bits the full kernel would produce.
    fn recompute_rows(&mut self, k: usize, rows: &[usize]) {
        let (input, out): (&DenseMatrix, &mut DenseMatrix) = if k == 0 {
            (&self.x, &mut self.h[0])
        } else {
            let (lo, hi) = self.h.split_at_mut(k);
            (&lo[k - 1], &mut hi[0])
        };
        let d = input.cols();
        for &i in rows {
            let wi = self.norm.inv_sqrt[i];
            let nbrs = &self.norm.nbrs[i];
            let out_row = out.row_mut(i);
            out_row.fill(0.0);
            // Ascending columns with the diagonal interleaved, exactly
            // the CSR row order of `normalized_csr`.
            let mut diag_done = false;
            let accumulate = |c: usize, out_row: &mut [f64]| {
                let w = wi * self.norm.inv_sqrt[c];
                let in_row = input.row(c);
                for j in 0..d {
                    out_row[j] += w * in_row[j];
                }
            };
            for &c in nbrs {
                if !diag_done && i < c {
                    accumulate(i, out_row);
                    diag_done = true;
                }
                accumulate(c, out_row);
            }
            if !diag_done {
                accumulate(i, out_row);
            }
        }
    }

    /// Step/stride bookkeeping shared by both commit kinds, including the
    /// periodic resync and the optional shadow check.
    fn finish_commit(&mut self) {
        self.step += 1;
        self.since_resync += 1;
        self.resynced = false;
        if self.resync_stride > 0 && self.since_resync >= self.resync_stride {
            self.resync();
        }
        if self.shadow {
            self.assert_matches_full();
        }
    }

    /// Full recompute of every hop matrix (the periodic drift guard; a
    /// no-op on the bytes because the update rule is bitwise-exact).
    pub fn resync(&mut self) {
        let _t = bbgnn_obs::kernel_timer("incr/resync");
        self.h = Self::full_chain(&self.norm, &self.x, self.hops, self.threads);
        self.since_resync = 0;
        self.resynced = true;
    }

    /// Shadow check: recomputes `H` from scratch and asserts bitwise
    /// equality with the maintained state.
    ///
    /// # Panics
    /// Panics on the first differing element, naming hop/row/column.
    pub fn assert_matches_full(&self) {
        let full = Self::full_chain(&self.norm, &self.x, self.hops, self.threads);
        for (k, (a, b)) in self.h.iter().zip(&full).enumerate() {
            for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "incremental H diverged at hop {k}, row {}, col {} (incr {x:e} vs full {y:e}, step {})",
                    idx / a.cols(),
                    idx % a.cols(),
                    self.step
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small irregular graph: path 0-1-2-3 plus chord 1-3 and an
    /// isolated node 4.
    fn edges() -> Vec<(usize, usize)> {
        vec![(0, 1), (1, 2), (2, 3), (1, 3)]
    }

    fn csr_of(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = edges
            .iter()
            .flat_map(|&(u, v)| [(u, v, 1.0), (v, u, 1.0)])
            .collect();
        CsrMatrix::from_triplets(n, n, triplets)
    }

    fn assert_csr_bitwise(a: &CsrMatrix, b: &CsrMatrix) {
        assert_eq!(a.row_ptr(), b.row_ptr());
        assert_eq!(a.col_indices(), b.col_indices());
        let (av, bv) = (a.values(), b.values());
        assert_eq!(av.len(), bv.len());
        for (x, y) in av.iter().zip(bv) {
            assert_eq!(x.to_bits(), y.to_bits(), "value bits differ");
        }
    }

    #[test]
    fn normalized_csr_matches_gcn_normalize_bitwise() {
        let n = 5;
        let norm = IncrNorm::from_edges(n, &edges());
        assert_csr_bitwise(&norm.normalized_csr(), &csr_of(n, &edges()).gcn_normalize());
    }

    #[test]
    fn flipped_normalized_csr_matches_rebuild_bitwise() {
        let n = 5;
        let norm = IncrNorm::from_edges(n, &edges());
        // Candidate additions and deletions, including ones touching the
        // isolated node and a deletion that leaves node 0 isolated.
        for &(u, v) in &[(0, 4), (2, 4), (0, 1), (1, 3), (0, 2)] {
            let virt = norm.flipped_normalized_csr(u, v);
            let mut flipped = edges();
            if let Some(pos) = flipped
                .iter()
                .position(|&(a, b)| (a, b) == (u.min(v), u.max(v)))
            {
                flipped.remove(pos);
            } else {
                flipped.push((u, v));
            }
            assert_csr_bitwise(&virt, &csr_of(n, &flipped).gcn_normalize());
        }
        // Virtual flips never mutate the base.
        assert_csr_bitwise(&norm.normalized_csr(), &csr_of(n, &edges()).gcn_normalize());
    }

    #[test]
    fn incr_prop_matches_full_recompute_bitwise() {
        let x = DenseMatrix::uniform(5, 3, 1.0, 11);
        let mut cfg = IncrConfig::new(2);
        cfg.resync_stride = 0; // isolate the update rule from resyncs
        let mut p = IncrProp::from_edges(5, &edges(), x, &cfg);
        for &(u, v) in &[(0, 4), (1, 2), (1, 2), (3, 4), (0, 3), (2, 4)] {
            p.flip_edge(u, v);
            p.assert_matches_full();
            assert!(p.last_rows_touched() > 0);
        }
        p.set_feature(4, 1, 1.0);
        p.assert_matches_full();
    }

    #[test]
    fn resync_fires_on_stride_and_preserves_bytes() {
        let x = DenseMatrix::uniform(5, 2, 1.0, 3);
        let mut cfg = IncrConfig::new(2);
        cfg.resync_stride = 2;
        let mut p = IncrProp::from_edges(5, &edges(), x, &cfg);
        let mut resyncs = 0;
        for &(u, v) in &[(0, 4), (0, 4), (1, 4), (2, 4), (0, 2)] {
            let before: Vec<u64> = p
                .propagated()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            p.flip_edge(u, v);
            if p.resynced() {
                resyncs += 1;
                // A resync right after an update must not change bytes.
                p.assert_matches_full();
            }
            let after: Vec<u64> = p
                .propagated()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_ne!(before, after, "a flip must change the propagation");
        }
        assert_eq!(resyncs, 2);
    }

    #[test]
    fn shadow_mode_checks_every_commit() {
        let x = DenseMatrix::uniform(5, 2, 1.0, 9);
        let mut cfg = IncrConfig::new(2);
        cfg.shadow = true;
        let mut p = IncrProp::from_edges(5, &edges(), x, &cfg);
        p.flip_edge(0, 4); // would panic on divergence
        assert_eq!(p.step(), 1);
    }

    #[test]
    fn state_hash_tracks_structure_features_and_step() {
        let x = DenseMatrix::uniform(5, 2, 1.0, 9);
        let cfg = IncrConfig::new(1);
        let mut p = IncrProp::from_edges(5, &edges(), x.clone(), &cfg);
        let h0 = p.state_hash();
        p.flip_edge(0, 4);
        let h1 = p.state_hash();
        assert_ne!(h0, h1);
        // Flipping back restores the structure but not the step index —
        // different history, different key (anti-aliasing).
        p.flip_edge(0, 4);
        assert_ne!(p.state_hash(), h0);
        assert_ne!(p.state_hash(), h1);
    }

    #[test]
    fn restore_state_validates_shapes() {
        let x = DenseMatrix::uniform(5, 2, 1.0, 9);
        let cfg = IncrConfig::new(2);
        let mut p = IncrProp::from_edges(5, &edges(), x, &cfg);
        assert!(p.restore_state(vec![DenseMatrix::zeros(5, 2)]).is_err());
        assert!(p
            .restore_state(vec![DenseMatrix::zeros(4, 2), DenseMatrix::zeros(4, 2)])
            .is_err());
        let good = p.hop_matrices().to_vec();
        assert!(p.restore_state(good).is_ok());
    }

    #[test]
    fn zero_hops_propagated_is_features() {
        let x = DenseMatrix::uniform(5, 2, 1.0, 9);
        let cfg = IncrConfig::new(0);
        let mut p = IncrProp::from_edges(5, &edges(), x.clone(), &cfg);
        p.flip_edge(0, 4);
        assert_eq!(p.propagated().as_slice(), x.as_slice());
    }

    #[test]
    fn enabled_flag_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
