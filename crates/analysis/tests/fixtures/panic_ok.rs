// Fixture: the `panic` rule skips test regions and honors the waiver.
pub fn guarded(v: &[usize]) -> usize {
    assert!(!v.is_empty());
    // lint: allow(panic) reason=fixture - the assert above pins non-emptiness
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1usize];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
