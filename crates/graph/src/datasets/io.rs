//! Plain-text dataset persistence.
//!
//! Format (one directory per dataset):
//!
//! * `meta.txt` — `nodes classes feature_dim` on one line;
//! * `edges.txt` — one `u v` pair per line (undirected, any order);
//! * `features.txt` — per node, the indices of its active feature bits
//!   (space-separated; empty line = no active bits). `identity` on the
//!   first line means identity features;
//! * `labels.txt` — one label per line;
//! * `split.txt` — three lines: train, valid, test node indices.
//!
//! This is deliberately simple so the real Cora/Citeseer/Polblogs data can
//! be exported from DeepRobust with a few lines of Python and dropped in.
//!
//! Every failure — unreadable file, malformed line, or a graph that fails
//! [`validation`](crate::validate) — comes back as a
//! [`BbgnnError`](bbgnn_errors::BbgnnError) naming the offending file, so
//! a truncated dataset directory is a diagnosis, not a panic.

use crate::splits::Split;
use crate::Graph;
use bbgnn_errors::{BbgnnError, BbgnnResult, ErrorContext};
use bbgnn_linalg::DenseMatrix;
use std::fs;
use std::path::Path;

/// `DatasetIo` error naming `path`.
fn io_err(path: &Path, message: impl std::fmt::Display) -> BbgnnError {
    BbgnnError::DatasetIo {
        path: path.display().to_string(),
        message: message.to_string(),
    }
}

/// Reads a whole file, naming it on failure.
fn read_file(path: &Path) -> BbgnnResult<String> {
    fs::read_to_string(path).map_err(|e| io_err(path, e))
}

/// Writes a whole file, naming it on failure.
fn write_file(path: &Path, contents: &str) -> BbgnnResult<()> {
    fs::write(path, contents).map_err(|e| io_err(path, e))
}

/// Parses one whitespace token, naming the file and describing the token on
/// failure.
fn parse_token<T: std::str::FromStr>(
    token: Option<&str>,
    path: &Path,
    what: &str,
) -> BbgnnResult<T> {
    let token = token.ok_or_else(|| io_err(path, format!("missing {what}")))?;
    token
        .parse()
        .map_err(|_| io_err(path, format!("malformed {what}: {token:?}")))
}

/// Saves `g` into directory `dir` (created if missing).
pub fn save(g: &Graph, dir: &Path) -> BbgnnResult<()> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    write_file(
        &dir.join("meta.txt"),
        &format!("{} {} {}\n", g.num_nodes(), g.num_classes, g.feature_dim()),
    )?;
    let mut edges = String::new();
    for (u, v) in g.edges() {
        edges.push_str(&format!("{u} {v}\n"));
    }
    write_file(&dir.join("edges.txt"), &edges)?;

    let identity = is_identity(&g.features);
    let mut feats = String::new();
    if identity {
        feats.push_str("identity\n");
    } else {
        for v in 0..g.num_nodes() {
            let active: Vec<String> = g
                .features
                .row(v)
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(j, _)| j.to_string())
                .collect();
            feats.push_str(&active.join(" "));
            feats.push('\n');
        }
    }
    write_file(&dir.join("features.txt"), &feats)?;

    let labels: String = g.labels.iter().map(|y| format!("{y}\n")).collect();
    write_file(&dir.join("labels.txt"), &labels)?;

    let mut split = String::new();
    for set in [&g.split.train, &g.split.valid, &g.split.test] {
        let line: Vec<String> = set.iter().map(|v| v.to_string()).collect();
        split.push_str(&line.join(" "));
        split.push('\n');
    }
    write_file(&dir.join("split.txt"), &split)
}

/// Loads a graph previously written by [`save`] (or exported externally in
/// the same format), validating it on the way in.
pub fn load(dir: &Path) -> BbgnnResult<Graph> {
    // Deterministic fault site (DESIGN.md §11): lets the chaos suite
    // exercise the DatasetIo recovery path without a broken file on disk.
    if bbgnn_supervise::fault_at("fault/dataset_io").is_some() {
        return Err(io_err(dir, "injected fault (BBGNN_FAULTS)"));
    }
    let meta_path = dir.join("meta.txt");
    let meta = read_file(&meta_path)?;
    let mut it = meta.split_whitespace();
    let n: usize = parse_token(it.next(), &meta_path, "node count")?;
    let classes: usize = parse_token(it.next(), &meta_path, "class count")?;
    let dim: usize = parse_token(it.next(), &meta_path, "feature dim")?;

    let edges_path = dir.join("edges.txt");
    let mut edges = Vec::new();
    for line in read_file(&edges_path)?.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = line.split_whitespace();
        let u: usize = parse_token(p.next(), &edges_path, "edge endpoint")?;
        let v: usize = parse_token(p.next(), &edges_path, "edge endpoint")?;
        edges.push((u, v));
    }

    let feats_path = dir.join("features.txt");
    let feats_text = read_file(&feats_path)?;
    let features = if feats_text.trim_start().starts_with("identity") {
        DenseMatrix::identity(n)
    } else {
        let mut x = DenseMatrix::zeros(n, dim);
        for (v, line) in feats_text.lines().enumerate().take(n) {
            for tok in line.split_whitespace() {
                let j: usize = parse_token(Some(tok), &feats_path, "feature index")?;
                if j >= dim {
                    return Err(io_err(
                        &feats_path,
                        format!("feature index {j} out of range for dim {dim} (node {v})"),
                    ));
                }
                x.set(v, j, 1.0);
            }
        }
        x
    };

    let labels_path = dir.join("labels.txt");
    let labels: Vec<usize> = read_file(&labels_path)?
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_token(Some(l.trim()), &labels_path, "label"))
        .collect::<BbgnnResult<_>>()?;

    let split_path = dir.join("split.txt");
    let split_text = read_file(&split_path)?;
    let mut sets = split_text.lines().map(|line| {
        line.split_whitespace()
            .map(|t| parse_token(Some(t), &split_path, "split index"))
            .collect::<BbgnnResult<Vec<usize>>>()
    });
    let train = sets.next().transpose()?.unwrap_or_default();
    let valid = sets.next().transpose()?.unwrap_or_default();
    let test = sets.next().transpose()?.unwrap_or_default();

    Graph::try_new(
        n,
        &edges,
        features,
        labels,
        classes,
        Split { train, valid, test },
    )
    .with_context(|| format!("loading dataset from {}", dir.display()))
}

fn is_identity(m: &DenseMatrix) -> bool {
    if m.rows() != m.cols() {
        return false;
    }
    for i in 0..m.rows() {
        for (j, &v) in m.row(i).iter().enumerate() {
            if (i == j && v != 1.0) || (i != j && v != 0.0) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = DatasetSpec::CoraLike.generate(0.05, 9);
        let dir = std::env::temp_dir().join("bbgnn_io_roundtrip");
        save(&g, &dir).unwrap();
        let h = load(&dir).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(g.labels, h.labels);
        assert_eq!(g.features, h.features);
        assert_eq!(g.split.train, h.split.train);
        assert_eq!(g.split.test, h.split.test);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtrip_identity_features() {
        let g = DatasetSpec::PolblogsLike.generate(0.05, 9);
        let dir = std::env::temp_dir().join("bbgnn_io_roundtrip_id");
        save(&g, &dir).unwrap();
        let h = load(&dir).unwrap();
        assert_eq!(g.features, h.features);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        match load(Path::new("/nonexistent/bbgnn")) {
            Err(e) => {
                let msg = e.root_cause().to_string();
                assert!(
                    msg.contains("/nonexistent/bbgnn"),
                    "error must name the path: {msg}"
                );
            }
            Ok(_) => panic!("loading a missing directory must fail"),
        }
    }

    #[test]
    fn truncated_dataset_dir_names_the_missing_file() {
        // Fault injection: a partially copied dataset (meta + edges only)
        // must produce a diagnosis naming the first missing file.
        let g = DatasetSpec::CoraLike.generate(0.05, 9);
        let dir = std::env::temp_dir().join("bbgnn_io_truncated");
        save(&g, &dir).unwrap();
        fs::remove_file(dir.join("labels.txt")).unwrap();
        match load(&dir) {
            Err(e) => {
                let msg = e.root_cause().to_string();
                assert!(
                    msg.contains("labels.txt"),
                    "error must name the missing file: {msg}"
                );
            }
            Ok(_) => panic!("loading a truncated dataset directory must fail"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_meta_names_the_file() {
        let dir = std::env::temp_dir().join("bbgnn_io_bad_meta");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("meta.txt"), "twelve 3 4\n").unwrap();
        match load(&dir) {
            Err(BbgnnError::DatasetIo { path, message }) => {
                assert!(path.ends_with("meta.txt"), "wrong file named: {path}");
                assert!(
                    message.contains("node count"),
                    "unhelpful message: {message}"
                );
            }
            other => panic!("expected DatasetIo, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
