//! Cross-crate integration tests: dataset → attack → defend → metrics.

use bbgnn::prelude::*;

fn small_graph(seed: u64) -> Graph {
    DatasetSpec::CoraLike.generate(0.05, seed)
}

#[test]
fn full_pipeline_attack_then_defend() {
    let g = small_graph(201);
    let mut attacker = Peega::new(PeegaConfig {
        rate: 0.1,
        ..Default::default()
    });
    let result = attacker.attack(&g);
    assert!(result.edge_flips + result.feature_flips > 0);

    let mut defender = Gnat::new(GnatConfig {
        train: TrainConfig::fast_test(),
        ..Default::default()
    });
    defender.fit(&result.poisoned);
    let acc = defender.test_accuracy(&result.poisoned);
    assert!(acc > 0.4, "pipeline accuracy {acc}");
}

#[test]
fn all_registry_attackers_respect_budget() {
    let g = small_graph(202);
    let rate = 0.1;
    let budget = budget_for(&g, rate);
    for kind in AttackerKind::paper_rows(rate) {
        // Tune the slow ones down for test speed.
        let kind = match kind {
            AttackerKind::Metattack(c) => AttackerKind::Metattack(MetattackConfig {
                retrain_every: 10,
                ..c
            }),
            AttackerKind::Pgd(c) => AttackerKind::Pgd(PgdConfig {
                ascent_steps: 15,
                ..c
            }),
            AttackerKind::MinMax(c) => AttackerKind::MinMax(MinMaxConfig {
                ascent_steps: 15,
                inner_epochs: 10,
                ..c
            }),
            other => other,
        };
        let mut attacker = kind.build();
        let result = attacker.attack(&g);
        let spent = result.edge_flips + result.feature_flips;
        assert!(
            spent <= budget,
            "{} overspent: {spent} > {budget}",
            attacker.name()
        );
        assert!(spent > 0, "{} did nothing", attacker.name());
        // The input graph is untouched.
        assert_eq!(g.num_nodes(), result.poisoned.num_nodes());
    }
}

#[test]
fn all_registry_defenders_train_on_poisoned_graph() {
    let g = small_graph(203);
    let mut attacker = Peega::new(PeegaConfig {
        rate: 0.1,
        ..Default::default()
    });
    let poisoned = attacker.attack(&g).poisoned;
    for kind in DefenderKind::paper_columns(false) {
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs = 40;
        // Pro-GNN is quadratically more expensive; shrink it.
        let kind = match kind {
            DefenderKind::ProGnn(c) => DefenderKind::ProGnn(ProGnnConfig {
                outer_epochs: 5,
                inner_epochs: 3,
                ..c
            }),
            other => other,
        };
        let mut defender = kind.build(cfg);
        defender.fit(&poisoned);
        let acc = defender.test_accuracy(&poisoned);
        assert!(
            acc > 0.25,
            "{} collapsed on the poisoned graph: {acc}",
            defender.name()
        );
        let preds = defender.predict(&poisoned);
        assert_eq!(preds.len(), g.num_nodes());
        assert!(preds.iter().all(|&p| p < g.num_classes));
    }
}

#[test]
fn polblogs_pipeline_without_feature_defenses() {
    let g = DatasetSpec::PolblogsLike.generate(0.08, 204);
    let mut attacker = Peega::new(PeegaConfig {
        rate: 0.05,
        ..Default::default()
    });
    let poisoned = attacker.attack(&g).poisoned;
    let cols = DefenderKind::paper_columns(true);
    assert!(!cols.iter().any(|c| c.name() == "GCN-Jaccard"));
    let mut gnat = cols.last().unwrap().build(TrainConfig::fast_test());
    gnat.fit(&poisoned);
    assert!(gnat.test_accuracy(&poisoned) > 0.6);
}

#[test]
fn metrics_pipeline_matches_attack_bookkeeping() {
    let g = small_graph(205);
    let mut attacker = Metattack::new(MetattackConfig {
        rate: 0.1,
        retrain_every: 10,
        ..Default::default()
    });
    let result = attacker.attack(&g);
    let breakdown = edge_diff_breakdown(&g, &result.poisoned);
    assert_eq!(
        breakdown.total(),
        result.edge_flips,
        "Fig. 2 totals must match ‖Â − A‖₀"
    );
}

#[test]
fn dataset_io_roundtrip_through_attack() {
    let g = small_graph(206);
    let mut attacker = Peega::new(PeegaConfig {
        rate: 0.05,
        ..Default::default()
    });
    let poisoned = attacker.attack(&g).poisoned;
    let dir = std::env::temp_dir().join("bbgnn_integration_io");
    bbgnn::graph::datasets::io::save(&poisoned, &dir).unwrap();
    let reloaded = bbgnn::graph::datasets::io::load(&dir).unwrap();
    assert_eq!(poisoned.num_edges(), reloaded.num_edges());
    assert_eq!(poisoned.features, reloaded.features);
    let _ = std::fs::remove_dir_all(&dir);
}
