//! RGCN (Zhu et al. 2019) — Gaussian-representation defense.
//!
//! RGCN models each node's hidden representation as a Gaussian
//! `N(μ_v, diag(σ²_v))` and attenuates high-variance (likely-attacked)
//! neighbors with a variance-based attention weight `α = exp(−σ²)`:
//!
//! * layer 1 produces means `M = relu(A_n X W_μ)` and variances
//!   `Σ = relu(A_n X W_σ)`;
//! * layer 2 propagates attenuated samples
//!   `Z = A_n ((M + ε ∘ √Σ) ∘ α) W_o` with the reparameterization trick
//!   (fresh `ε ~ N(0, I)` per epoch) during training, and the plain means
//!   at inference;
//! * a KL regularizer `½ Σ (σ² + μ² − 1 − ln σ²)` pulls the layer-1
//!   Gaussians toward `N(0, I)`.
//!
//! Simplifications relative to the original (per DESIGN.md §3): a single
//! attention temperature `γ = 1` and the KL term on the first layer only.
//! The signature behaviour — variance-gated neighbor aggregation — is
//! intact.

use crate::Defender;
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_gnn::train::{train_with_regularizer_keyed, Mode, TrainConfig, TrainReport};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::rc::Rc;

/// RGCN configuration.
#[derive(Clone, Debug)]
pub struct RgcnConfig {
    /// Hidden width (the paper tunes `{16, 32, 64, 128}`).
    pub hidden: usize,
    /// Weight of the KL regularizer.
    pub kl_weight: f64,
    /// Training configuration.
    pub train: TrainConfig,
}

impl Default for RgcnConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            kl_weight: 5e-4,
            train: TrainConfig::default(),
        }
    }
}

/// The RGCN defender.
pub struct Rgcn {
    /// Configuration.
    pub config: RgcnConfig,
    /// Parameter layout: `[W_μ, W_σ, W_o]`.
    params: Vec<DenseMatrix>,
}

impl Rgcn {
    /// Creates an untrained RGCN defender.
    pub fn new(config: RgcnConfig) -> Self {
        Self {
            config,
            params: Vec::new(),
        }
    }

    fn init_params(&self, in_dim: usize, num_classes: usize) -> Vec<DenseMatrix> {
        let s = self.config.train.seed;
        vec![
            DenseMatrix::glorot(in_dim, self.config.hidden, s),
            DenseMatrix::glorot(in_dim, self.config.hidden, s.wrapping_add(1)),
            DenseMatrix::glorot(self.config.hidden, num_classes, s.wrapping_add(2)),
        ]
    }

    /// Builds the forward pass; returns `(logits, ids, Some(kl))` during
    /// training and `(logits, ids, None)` at inference.
    fn forward(
        &self,
        tape: &mut Tape,
        params: &[DenseMatrix],
        an: &Rc<CsrMatrix>,
        x: &DenseMatrix,
        mode: Mode,
    ) -> (TensorId, Vec<TensorId>, Option<TensorId>) {
        let ids: Vec<TensorId> = params.iter().map(|p| tape.var(p.clone())).collect();
        let xc = tape.constant(x.clone());
        let xmu = tape.matmul(xc, ids[0]);
        let mu = tape.spmm(Rc::clone(an), xmu);
        let mu = tape.relu(mu);
        let xsig = tape.matmul(xc, ids[1]);
        let sig = tape.spmm(Rc::clone(an), xsig);
        let sig = tape.relu(sig); // σ² ≥ 0

        // Variance-based attention α = exp(−σ²): noisy nodes whisper.
        let neg_sig = tape.scalar_mul(sig, -1.0);
        let alpha = tape.exp(neg_sig);

        let hidden = match mode.train_epoch() {
            None => mu,
            Some(epoch) => {
                // Reparameterized sample μ + ε ∘ √σ².
                let eps = Rc::new(DenseMatrix::gaussian(
                    x.rows(),
                    self.config.hidden,
                    1.0,
                    self.config.train.seed.wrapping_add(40_000 + epoch as u64),
                ));
                let std = tape.pow_scalar(sig, 0.5);
                let noise = tape.hadamard_const(std, eps);
                tape.add(mu, noise)
            }
        };
        let gated = tape.hadamard(hidden, alpha);
        let gw = tape.matmul(gated, ids[2]);
        let logits = tape.spmm(Rc::clone(an), gw);

        if !mode.is_train() {
            return (logits, ids, None);
        }
        // KL(N(μ, σ²) ‖ N(0, I)) = ½ Σ (σ² + μ² − 1 − ln σ²); the constant
        // −1 does not influence gradients and is dropped.
        let mu_sq = tape.hadamard(mu, mu);
        let ln_sig = tape.ln(sig);
        let t = tape.add(sig, mu_sq);
        let t = tape.sub(t, ln_sig);
        let kl_sum = tape.sum_all(t);
        let kl = tape.scalar_mul(kl_sum, 0.5 * self.config.kl_weight / x.rows() as f64);
        (logits, ids, Some(kl))
    }
}

impl NodeClassifier for Rgcn {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let _span = bbgnn_obs::span!("defense/rgcn/fit", nodes = g.num_nodes());
        let an = Rc::new(g.normalized_adjacency());
        let mut params = self.init_params(g.feature_dim(), g.num_classes);
        let x = g.features.clone();
        let cfg = self.config.train.clone();
        let salt = bbgnn_store::enabled().then(|| {
            bbgnn_store::Key::new("model/rgcn")
                .field("hidden", self.config.hidden)
                .field("kl", self.config.kl_weight)
        });
        let this = &*self;
        let report = train_with_regularizer_keyed(&mut params, g, &cfg, salt, |tape, p, mode| {
            this.forward(tape, p, &an, &x, mode)
        });
        self.params = params;
        report
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        assert!(!self.params.is_empty(), "model is not trained");
        let an = Rc::new(g.normalized_adjacency());
        let mut tape = Tape::new();
        let (out, _, _) = self.forward(&mut tape, &self.params, &an, &g.features, Mode::Eval);
        tape.value(out).row_argmax()
    }
}

impl Defender for Rgcn {
    fn name(&self) -> String {
        "RGCN".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn learns_clean_graph() {
        let g = DatasetSpec::CoraLike.generate(0.06, 131);
        let mut rgcn = Rgcn::new(RgcnConfig {
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        let report = rgcn.fit(&g);
        assert!(report.final_loss.is_finite(), "KL term must stay finite");
        let acc = rgcn.test_accuracy(&g);
        assert!(acc > 0.55, "RGCN clean accuracy {acc} too low");
    }

    #[test]
    fn inference_is_deterministic() {
        let g = DatasetSpec::CoraLike.generate(0.05, 132);
        let mut rgcn = Rgcn::new(RgcnConfig {
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        rgcn.fit(&g);
        assert_eq!(
            rgcn.predict(&g),
            rgcn.predict(&g),
            "means-only inference must be stable"
        );
    }

    #[test]
    fn survives_poisoned_graph() {
        use bbgnn_attack::peega::{Peega, PeegaConfig};
        use bbgnn_attack::Attacker;
        let g = DatasetSpec::CoraLike.generate(0.06, 133);
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.15,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;
        let mut rgcn = Rgcn::new(RgcnConfig {
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        rgcn.fit(&poisoned);
        let acc = rgcn.test_accuracy(&poisoned);
        assert!(
            acc > 0.3,
            "RGCN accuracy {acc} under attack fell to chance level"
        );
    }
}
