//! Behavioural tests of the GNN models beyond clean-accuracy smoke tests:
//! transductive prediction contracts, depth effects, training-loop
//! internals, and the surrogate/GCN relationship the PEEGA derivation
//! (Eq. 7) relies on.

use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::linear_gcn::LinearGcn;
use bbgnn_gnn::train::{train_with_regularizer, TrainConfig};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::datasets::{DatasetSpec, SbmParams};
use bbgnn_graph::{Graph, Split};
use bbgnn_linalg::DenseMatrix;

#[test]
fn gcn_predicts_on_modified_graph_without_retraining() {
    // Evasion setting: train on the clean graph, predict on a perturbed
    // one. The logits must change (the model reads the new adjacency).
    let g = DatasetSpec::CoraLike.generate(0.06, 601);
    let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
    gcn.fit(&g);
    let mut h = g.clone();
    // Rewire a chunk of edges.
    let edges: Vec<_> = g.edges().take(20).collect();
    for (u, v) in edges {
        h.remove_edge(u, v);
        h.add_edge(u, (v + 1) % g.num_nodes());
    }
    assert_ne!(
        gcn.logits(&g).as_slice(),
        gcn.logits(&h).as_slice(),
        "logits must depend on the adjacency"
    );
}

#[test]
fn gcn_accuracy_degrades_with_label_noise_in_training() {
    let g = DatasetSpec::CoraLike.generate(0.08, 602);
    let mut clean = Gcn::paper_default(TrainConfig::fast_test());
    clean.fit(&g);
    let clean_acc = clean.test_accuracy(&g);

    // Corrupt half of the training labels.
    let mut noisy = g.clone();
    for (i, &v) in g.split.train.iter().enumerate() {
        if i % 2 == 0 {
            noisy.labels[v] = (noisy.labels[v] + 1) % noisy.num_classes;
        }
    }
    let mut corrupted = Gcn::paper_default(TrainConfig::fast_test());
    corrupted.fit(&noisy);
    // Evaluate against the TRUE labels.
    let preds = corrupted.predict(&noisy);
    let noisy_acc = bbgnn_gnn::eval::accuracy(&preds, &g.labels, &g.split.test);
    assert!(
        noisy_acc < clean_acc,
        "label noise must hurt: {clean_acc} -> {noisy_acc}"
    );
}

#[test]
fn linear_surrogate_agrees_with_gcn_on_easy_nodes() {
    // Eq. 7's premise: the linear surrogate A_n²XW approximates the GCN
    // well enough that attacking it transfers. Prediction agreement on a
    // clean homophilous graph should be substantial.
    let g = DatasetSpec::CoraLike.generate(0.1, 603);
    let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
    let mut lin = LinearGcn::new(2, TrainConfig::fast_test());
    gcn.fit(&g);
    lin.fit(&g);
    let a = gcn.predict(&g);
    let b = lin.predict(&g);
    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64;
    assert!(
        agree > 0.7,
        "surrogate agreement {agree} too low for Eq. 7 to make sense"
    );
}

#[test]
fn training_report_reflects_early_stopping() {
    let g = DatasetSpec::CoraLike.generate(0.06, 604);
    let long = TrainConfig {
        epochs: 500,
        patience: 20,
        dropout: 0.0,
        ..Default::default()
    };
    let mut gcn = Gcn::paper_default(long);
    let report = gcn.fit(&g);
    assert!(
        report.epochs_run < 500,
        "early stopping should trigger well before 500 epochs"
    );
    // The tiny validation set (~15 nodes) makes the absolute value noisy;
    // beating chance (1/7) is the contract.
    assert!(report.best_val_accuracy > 0.2);
    assert!(report.seconds > 0.0);
}

#[test]
fn regularized_training_changes_parameters() {
    // train_with_regularizer must route the extra-loss gradient into the
    // parameters (RGCN's KL, SimPGCN's SSL rely on this).
    let g = DatasetSpec::CoraLike.generate(0.05, 605);
    let d = g.feature_dim();
    let k = g.num_classes;
    let x = g.features.clone();
    let run = |with_reg: bool| -> DenseMatrix {
        let mut params = vec![DenseMatrix::glorot(d, k, 9)];
        let cfg = TrainConfig {
            epochs: 30,
            patience: 0,
            dropout: 0.0,
            ..Default::default()
        };
        train_with_regularizer(&mut params, &g, &cfg, |tape, p, _| {
            let w = tape.var(p[0].clone());
            let xc = tape.constant(x.clone());
            let logits = tape.matmul(xc, w);
            let reg = if with_reg {
                // L2 penalty as the extra term.
                let sq = tape.hadamard(w, w);
                let sum = tape.sum_all(sq);
                Some(tape.scalar_mul(sum, 0.1))
            } else {
                None
            };
            (logits, vec![w], reg)
        });
        params.pop().unwrap()
    };
    let base = run(false);
    let reg = run(true);
    assert!(base.max_abs_diff(&reg) > 1e-6, "regularizer had no effect");
    assert!(
        reg.frobenius_norm() < base.frobenius_norm(),
        "L2 reg must shrink weights"
    );
}

#[test]
fn single_class_dataset_trains_degenerately_but_safely() {
    let g = SbmParams {
        nodes: 40,
        edges: 80,
        classes: 1,
        homophily: 1.0,
        feature_dim: 10,
        active_features: 3,
        feature_purity: 0.9,
        train_frac: 0.3,
        valid_frac: 0.3,
    }
    .generate(606);
    let mut gcn = Gcn::paper_default(TrainConfig {
        epochs: 10,
        patience: 0,
        dropout: 0.0,
        ..Default::default()
    });
    gcn.fit(&g);
    assert_eq!(
        gcn.test_accuracy(&g),
        1.0,
        "one class: everything is trivially correct"
    );
}

#[test]
fn edgeless_graph_reduces_to_feature_classifier() {
    // GCN on an edgeless graph sees only self-loops: it degenerates to a
    // per-node MLP on features and must still beat chance.
    let base = DatasetSpec::CoraLike.generate(0.1, 607);
    let g = Graph::new(
        base.num_nodes(),
        &[],
        base.features.clone(),
        base.labels.clone(),
        base.num_classes,
        Split::random(base.num_nodes(), 0.1, 0.1, 607),
    );
    let mut gcn = Gcn::paper_default(TrainConfig::fast_test());
    gcn.fit(&g);
    let acc = gcn.test_accuracy(&g);
    assert!(
        acc > 1.5 / g.num_classes as f64,
        "edgeless GCN accuracy {acc} below chance-ish"
    );
}
