//! Hand-rolled binary artifact format: versioned magic, tagged payload,
//! fletcher-64 checksum. No serde — every byte is written and read
//! explicitly so the format is auditable and MSRV-stable.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic `BBST`
//! 4       2     format version (u16) — bump invalidates every artifact
//! 6       1     artifact kind tag (u8) — one per codec in `artifact.rs`
//! 7       4     key text length (u32)
//! 11      k     key text (UTF-8) — the full cache key, not just its hash
//! 11+k    8     payload length (u64)
//! 19+k    p     payload (codec-specific, see [`Artifact`])
//! 19+k+p  8     fletcher-64 checksum of bytes `[0, 19+k+p)`
//! ```
//!
//! Floats are serialized by IEEE-754 bit pattern (`f64::to_bits`), so a
//! round-trip is bitwise-lossless: `-0.0`, subnormals, and NaN payloads
//! survive. The embedded key text is compared on every read — a 64-bit
//! filename-hash collision therefore degrades to a cache miss, never to
//! serving the wrong artifact.

/// File magic: "BBgnn STore".
pub const MAGIC: [u8; 4] = *b"BBST";

/// Current format version. Bumping it invalidates every existing artifact
/// (old files read back as misses, `bbgnn-store verify` reports them).
pub const FORMAT_VERSION: u16 = 1;

/// Fletcher-64 checksum: two 32-bit running sums over the byte stream.
///
/// Catches the corruption classes that matter for an on-disk cache
/// (truncation, bit flips, swapped blocks) without pulling in a CRC
/// table; it is not cryptographic and does not need to be — the store
/// only defends against accidents, not adversaries.
pub fn fletcher64(bytes: &[u8]) -> u64 {
    let mut sum1: u64 = 0;
    let mut sum2: u64 = 0;
    for &b in bytes {
        sum1 = (sum1 + u64::from(b)) % 0xFFFF_FFFF;
        sum2 = (sum2 + sum1) % 0xFFFF_FFFF;
    }
    (sum2 << 32) | sum1
}

/// Append-only byte sink with typed little-endian writers.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.bytes(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Writes a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` by bit pattern (bitwise-lossless).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked cursor over an artifact payload.
///
/// Every read returns `Err` on exhaustion instead of panicking: a
/// truncated or corrupted payload must surface as a recoverable decode
/// error (the store turns it into a cache miss), never a crash.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current cursor position (for error messages).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize`, rejecting values that overflow the platform width
    /// or exceed the remaining payload (length-prefix sanity bound).
    pub fn usize(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("length {v} overflows usize"))
    }

    /// Reads a length prefix that counts items of `item_size` bytes each,
    /// rejecting prefixes larger than the remaining payload could hold.
    /// This keeps a corrupted length from triggering a huge allocation.
    pub fn len_prefix(&mut self, item_size: usize) -> Result<usize, String> {
        let n = self.usize()?;
        if item_size > 0 && n > self.remaining() / item_size {
            return Err(format!(
                "length prefix {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            ));
        }
        Ok(n)
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("invalid bool byte {b}")),
        }
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let n = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, String> {
        let n = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.usize()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "key text is not UTF-8".to_string())
    }

    /// Fails unless the cursor consumed every byte — trailing garbage
    /// means the payload does not match the codec that wrote it.
    pub fn finish(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after payload decode",
                self.remaining()
            ));
        }
        Ok(())
    }
}

/// A type the store can persist: a tagged, self-describing codec.
///
/// `encode`/`decode` must round-trip bitwise: `decode(encode(x)) == x`
/// down to every float's bit pattern. The store's determinism guarantee
/// (a hit is indistinguishable from recomputation) rests on this.
pub trait Artifact: Sized {
    /// On-disk kind tag (one byte, unique per codec).
    const TAG: u8;
    /// Human-readable kind, used in key derivation and `bbgnn-store ls`.
    const KIND: &'static str;
    /// Serializes `self` into `w`.
    fn encode(&self, w: &mut Writer);
    /// Deserializes from `r`; the caller verifies full consumption.
    fn decode(r: &mut Reader) -> Result<Self, String>;
}

/// Frames an encoded payload into a complete artifact file image:
/// header + key text + payload + checksum.
pub fn frame(tag: u8, key_text: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u16(FORMAT_VERSION);
    w.u8(tag);
    w.u32(key_text.len() as u32);
    w.bytes(key_text.as_bytes());
    w.u64(payload.len() as u64);
    w.bytes(payload);
    let sum = fletcher64(&w.buf);
    w.u64(sum);
    w.into_bytes()
}

/// A parsed artifact header plus its payload slice.
#[derive(Debug)]
pub struct Framed<'a> {
    /// Format version recorded in the file.
    pub version: u16,
    /// Artifact kind tag.
    pub tag: u8,
    /// Full key text recorded at write time.
    pub key_text: String,
    /// Codec payload bytes.
    pub payload: &'a [u8],
}

/// Validates the envelope of a file image: magic, checksum, lengths.
///
/// Version mismatch is reported as a distinct error string prefix
/// (`"format version"`) so callers can distinguish *stale* (miss,
/// expected after a format bump) from *corrupt* (warn).
pub fn deframe(bytes: &[u8]) -> Result<Framed<'_>, String> {
    if bytes.len() < MAGIC.len() + 2 + 1 + 4 + 8 + 8 {
        return Err(format!("file too short ({} bytes)", bytes.len()));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(sum_bytes);
    let stored = u64::from_le_bytes(stored);
    let computed = fletcher64(body);
    if stored != computed {
        return Err(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        ));
    }
    let mut r = Reader::new(body);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(format!("bad magic {magic:?}"));
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version} != current {FORMAT_VERSION}"
        ));
    }
    let tag = r.u8()?;
    let key_len = r.u32()? as usize;
    let key_bytes = r.take(key_len)?;
    let key_text =
        String::from_utf8(key_bytes.to_vec()).map_err(|_| "key text is not UTF-8".to_string())?;
    let payload_len = r.u64()?;
    if payload_len != r.remaining() as u64 {
        return Err(format!(
            "payload length {payload_len} != {} bytes present",
            r.remaining()
        ));
    }
    let payload = &body[body.len() - r.remaining()..];
    Ok(Framed {
        version,
        tag,
        key_text,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fletcher_reference_behaviour() {
        assert_eq!(fletcher64(b""), 0);
        // One byte: sum1 = b, sum2 = b.
        assert_eq!(fletcher64(&[7]), (7 << 32) | 7);
        // Order sensitivity: swapped blocks must change the sum.
        assert_ne!(fletcher64(b"ab"), fletcher64(b"ba"));
    }

    #[test]
    fn frame_deframe_roundtrip() {
        let img = frame(3, "model/gcn|lr=0.01", b"payload-bytes");
        let f = deframe(&img).expect("deframe");
        assert_eq!(f.version, FORMAT_VERSION);
        assert_eq!(f.tag, 3);
        assert_eq!(f.key_text, "model/gcn|lr=0.01");
        assert_eq!(f.payload, b"payload-bytes");
    }

    #[test]
    fn deframe_rejects_flipped_bit() {
        let mut img = frame(1, "k", b"abcdef");
        let mid = img.len() / 2;
        img[mid] ^= 0x40;
        let err = deframe(&img).expect_err("must reject");
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn deframe_rejects_truncation() {
        let img = frame(1, "k", b"abcdef");
        for cut in [0, 1, img.len() / 2, img.len() - 1] {
            assert!(deframe(&img[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn deframe_rejects_future_version() {
        let mut img = frame(1, "k", b"abc");
        // Bump the version field (offset 4..6) and re-checksum so only the
        // version check can fire.
        img[4] = img[4].wrapping_add(1);
        let body_len = img.len() - 8;
        let sum = fletcher64(&img[..body_len]).to_le_bytes();
        img[body_len..].copy_from_slice(&sum);
        let err = deframe(&img).expect_err("must reject");
        assert!(err.starts_with("format version"), "{err}");
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());
        assert_eq!(r.position(), 0, "failed read must not advance");
        let mut r2 = Reader::new(&[0xFF; 8]);
        // Huge length prefix must be rejected before allocation.
        assert!(r2.f64s().is_err());
    }

    #[test]
    fn writer_reader_scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(9);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(-0.0);
        w.bool(true);
        w.str("héllo");
        w.f64s(&[1.5, f64::NAN, f64::INFINITY]);
        w.usizes(&[0, 1, usize::MAX >> 1]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().expect("u8"), 9);
        assert_eq!(r.u16().expect("u16"), 513);
        assert_eq!(r.u32().expect("u32"), 70_000);
        assert_eq!(r.u64().expect("u64"), 1 << 40);
        let z = r.f64().expect("f64");
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "-0.0 must survive");
        assert!(r.bool().expect("bool"));
        assert_eq!(r.str().expect("str"), "héllo");
        let fs = r.f64s().expect("f64s");
        assert_eq!(fs[0], 1.5);
        assert!(fs[1].is_nan());
        assert_eq!(fs[2], f64::INFINITY);
        assert_eq!(r.usizes().expect("usizes"), vec![0, 1, usize::MAX >> 1]);
        r.finish().expect("fully consumed");
    }
}
