//! The DESIGN.md §8 span/event/counter/kernel-timer name taxonomy, parsed
//! from the document itself.
//!
//! The obs layer's names are documented as a bullet list in DESIGN.md §8
//! ("Span & counter taxonomy"). Rather than maintaining a second copy of
//! that list in code — which would drift — both consumers parse the doc:
//!
//! * `bbgnn-lint`'s `obs_name` rule checks every `span!` / `event!` /
//!   `counter` / `kernel_timer` **name literal** in the workspace against
//!   the taxonomy at lint time;
//! * `bbgnn_bench::trace` validates the counter and kernel-timer names in
//!   a recorded trace at `trace_report` time.
//!
//! The document is embedded at compile time (`include_str!`), so editing
//! DESIGN.md §8 recompiles and re-checks both.
//!
//! Grammar of a taxonomy item: backtick-quoted, `/`-separated segments.
//! `<placeholder>` segments match any single segment (`attack/<name>`
//! matches `attack/peega_parallel`), and `{a,b}` brace alternation expands
//! (`kernel/{matmul,spmm}` is two names). Backticked items without a `/`
//! (prose like `layer/detail` lives outside the bullet block) are ignored.

/// The DESIGN.md source this build was compiled against.
pub const DESIGN_MD: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"));

/// One `/`-separated name pattern. Carries its source text and DESIGN.md
/// line so the `dead_taxonomy` flow rule can anchor "declared but never
/// emitted" findings at the declaration site.
#[derive(Clone, Debug, Eq)]
pub struct Pattern {
    segs: Vec<Seg>,
    /// The item as written in the doc (post brace-expansion).
    pub text: String,
    /// 1-based DESIGN.md line the item was parsed from (0 for patterns
    /// built outside the doc, e.g. in tests).
    pub line: u32,
}

/// Equality is by shape only — the same name declared twice (e.g. once
/// per brace alternation) deduplicates regardless of source line.
impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.segs == other.segs
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Seg {
    Lit(String),
    Any,
}

impl Pattern {
    fn parse_at(item: &str, line: u32) -> Self {
        let segs = item
            .split('/')
            .map(|s| {
                if s.starts_with('<') && s.ends_with('>') {
                    Seg::Any
                } else {
                    Seg::Lit(s.to_string())
                }
            })
            .collect();
        Pattern {
            segs,
            text: item.to_string(),
            line,
        }
    }

    /// True if `name` has the same number of segments and every literal
    /// segment matches.
    pub fn matches(&self, name: &str) -> bool {
        let parts: Vec<&str> = name.split('/').collect();
        parts.len() == self.segs.len()
            && self.segs.iter().zip(&parts).all(|(seg, part)| match seg {
                Seg::Any => !part.is_empty(),
                Seg::Lit(l) => l == part,
            })
    }
}

/// The parsed taxonomy: one pattern list per record kind, plus the §11
/// fault-site catalog (exact names, no placeholders — the catalog is
/// closed by design).
#[derive(Clone, Debug, Default)]
pub struct Taxonomy {
    pub spans: Vec<Pattern>,
    pub events: Vec<Pattern>,
    pub counters: Vec<Pattern>,
    pub kernels: Vec<Pattern>,
    pub fault_sites: Vec<String>,
}

impl Taxonomy {
    pub fn span_ok(&self, name: &str) -> bool {
        self.spans.iter().any(|p| p.matches(name))
    }
    pub fn event_ok(&self, name: &str) -> bool {
        self.events.iter().any(|p| p.matches(name))
    }
    pub fn counter_ok(&self, name: &str) -> bool {
        self.counters.iter().any(|p| p.matches(name))
    }
    pub fn kernel_ok(&self, name: &str) -> bool {
        self.kernels.iter().any(|p| p.matches(name))
    }
    pub fn fault_site_ok(&self, name: &str) -> bool {
        self.fault_sites.iter().any(|s| s == name)
    }
}

/// Expands one level of `{a,b,c}` alternation. Items without braces pass
/// through unchanged.
fn brace_expand(item: &str) -> Vec<String> {
    match (item.find('{'), item.find('}')) {
        (Some(open), Some(close)) if open < close => {
            let prefix = &item[..open];
            let suffix = &item[close + 1..];
            item[open + 1..close]
                .split(',')
                .map(|alt| format!("{prefix}{}{suffix}", alt.trim()))
                .collect()
        }
        _ => vec![item.to_string()],
    }
}

/// Extracts every backtick-quoted item from `line`.
fn backticked(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        match after.find('`') {
            Some(close) => {
                out.push(&after[..close]);
                rest = &after[close + 1..];
            }
            None => break,
        }
    }
    out
}

/// Parses the taxonomy bullet list out of a DESIGN.md text.
///
/// The block starts at the line containing `Span & counter taxonomy` and
/// ends at the `**Overhead contract` paragraph. Bullets must be one of
/// `* spans:`, `* events:`, `* counters:`, `* kernel timers:`; wrapped
/// continuation lines attach to the preceding bullet. An unknown bullet is
/// an error — it means the doc changed shape and the parser (or the doc)
/// needs attention, which is exactly the drift this module exists to catch.
pub fn parse_taxonomy(md: &str) -> Result<Taxonomy, String> {
    let mut tax = Taxonomy::default();
    let mut in_block = false;
    let mut current: Option<usize> = None; // 0 spans, 1 events, 2 counters, 3 kernels
    for (lineno, line) in md.lines().enumerate() {
        let lineno = lineno as u32 + 1;
        if !in_block {
            if line.contains("Span & counter taxonomy") {
                in_block = true;
            }
            continue;
        }
        if line.contains("**Overhead contract") {
            break;
        }
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('*') {
            let rest = rest.trim_start();
            current = if rest.starts_with("spans:") {
                Some(0)
            } else if rest.starts_with("events:") {
                Some(1)
            } else if rest.starts_with("counters:") {
                Some(2)
            } else if rest.starts_with("kernel timers:") {
                Some(3)
            } else {
                return Err(format!(
                    "DESIGN.md §8 taxonomy: unknown bullet {trimmed:?} \
                     (expected spans/events/counters/kernel timers)"
                ));
            };
        }
        let Some(cat) = current else { continue };
        for item in backticked(trimmed) {
            for name in brace_expand(item) {
                if !name.contains('/') {
                    continue;
                }
                let pat = Pattern::parse_at(&name, lineno);
                let list = match cat {
                    0 => &mut tax.spans,
                    1 => &mut tax.events,
                    2 => &mut tax.counters,
                    _ => &mut tax.kernels,
                };
                if !list.contains(&pat) {
                    list.push(pat);
                }
            }
        }
    }
    if !in_block {
        return Err("DESIGN.md has no 'Span & counter taxonomy' block (§8)".to_string());
    }
    if tax.spans.is_empty() || tax.counters.is_empty() || tax.kernels.is_empty() {
        return Err("DESIGN.md §8 taxonomy parsed empty — doc structure changed?".to_string());
    }
    Ok(tax)
}

/// Parses the DESIGN.md §11 fault-site catalog: every backticked
/// `fault/...` item after the `**Fault-site catalog.**` marker. The
/// catalog is a closed list of exact names (no placeholders), mirrored in
/// `supervise::fault::FAULT_SITES` and enforced at every `fault_at` call
/// site by the `fault_site` lint rule.
pub fn parse_fault_sites(md: &str) -> Result<Vec<String>, String> {
    let mut sites = Vec::new();
    let mut in_block = false;
    for line in md.lines() {
        if !in_block {
            if line.contains("Fault-site catalog") {
                in_block = true;
            }
            continue;
        }
        for item in backticked(line) {
            if item.starts_with("fault/") && !sites.iter().any(|s| s == item) {
                sites.push(item.to_string());
            }
        }
    }
    if !in_block {
        return Err("DESIGN.md has no 'Fault-site catalog' block (§11)".to_string());
    }
    if sites.is_empty() {
        return Err(
            "DESIGN.md §11 fault-site catalog parsed empty — doc structure changed?".into(),
        );
    }
    Ok(sites)
}

/// The taxonomy of the DESIGN.md this binary was built against (§8 names
/// plus the §11 fault-site catalog).
pub fn builtin() -> Result<Taxonomy, String> {
    let mut tax = parse_taxonomy(DESIGN_MD)?;
    tax.fault_sites = parse_fault_sites(DESIGN_MD)?;
    Ok(tax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_design_doc_parses_and_matches_known_names() {
        let tax = builtin().expect("DESIGN.md §8 must parse");
        // Fixed names.
        assert!(tax.span_ok("bench/cell"));
        assert!(tax.span_ok("train/fit"));
        // Wildcard names.
        assert!(tax.span_ok("attack/peega_parallel"));
        assert!(tax.span_ok("defense/gnat/fit"));
        assert!(tax.event_ok("peega/perturb"));
        assert!(tax.event_ok("train/epoch"));
        // Brace-expanded kernel list includes the sequential backward SpMM.
        assert!(tax.kernel_ok("kernel/spmm_t"));
        assert!(tax.kernel_ok("pool/worker_busy"));
        assert!(tax.counter_ok("attack/edge_flips"));
        // Negative cases.
        assert!(!tax.counter_ok("attack/bogus_counter"));
        assert!(!tax.span_ok("made/up/name"));
        assert!(!tax.span_ok("attack/"));
    }

    #[test]
    fn builtin_taxonomy_covers_the_incremental_engine_names() {
        // §13's engine instruments through §8: the doc must admit exactly
        // the names `bbgnn_linalg::incr` emits, or the obs_name lint and
        // trace_report would reject an `--incremental` run.
        let tax = builtin().expect("DESIGN.md §8 must parse");
        assert!(tax.kernel_ok("incr/update"));
        assert!(tax.kernel_ok("incr/resync"));
        assert!(tax.counter_ok("incr/rows_touched"));
        assert!(!tax.kernel_ok("incr/bogus"));
        assert!(
            !tax.counter_ok("incr/update"),
            "update is a timer, not a counter"
        );
    }

    #[test]
    fn builtin_fault_site_catalog_matches_the_supervise_crate() {
        let tax = builtin().expect("DESIGN.md §11 must parse");
        for site in [
            "fault/dataset_io",
            "fault/kernel_nan",
            "fault/pool_panic",
            "fault/store_corrupt",
            "fault/store_short_write",
        ] {
            assert!(tax.fault_site_ok(site), "{site} missing from §11 catalog");
        }
        assert!(!tax.fault_site_ok("fault/bogus"));
        assert!(!tax.fault_site_ok("dataset_io"), "sites are exact names");
    }

    #[test]
    fn missing_fault_site_block_is_an_error() {
        assert!(parse_fault_sites("no marker here").is_err());
        assert!(parse_fault_sites("**Fault-site catalog.** prose only").is_err());
        let sites =
            parse_fault_sites("**Fault-site catalog.**\n\n* fault sites: `fault/a`, `fault/b`.")
                .unwrap();
        assert_eq!(sites, ["fault/a", "fault/b"]);
    }

    #[test]
    fn brace_alternation_and_placeholders() {
        let md = "\
**Span & counter taxonomy.** Names are `layer/detail` paths:

* spans: `a/{x,y}`, `b/<name>/fit`;
* events: `e/one`;
* counters: `c/one`;
* kernel timers: `k/one`.

**Overhead contract.**";
        let tax = parse_taxonomy(md).unwrap();
        assert!(tax.span_ok("a/x") && tax.span_ok("a/y") && !tax.span_ok("a/z"));
        assert!(tax.span_ok("b/anything/fit") && !tax.span_ok("b/fit"));
        // `layer/detail` sits on the header line, outside the bullets.
        assert!(!tax.span_ok("layer/detail"));
    }

    #[test]
    fn unknown_bullet_is_an_error() {
        let md = "\
**Span & counter taxonomy.**

* spans: `a/b`;
* gauges: `g/one`;

**Overhead contract.**";
        let err = parse_taxonomy(md).unwrap_err();
        assert!(err.contains("unknown bullet"), "{err}");
    }

    #[test]
    fn wrapped_bullet_lines_attach_to_the_open_category() {
        let md = "\
**Span & counter taxonomy.**

* spans: `a/b`,
  `c/d`;
* counters: `c/one`;
* kernel timers: `k/one`.

**Overhead contract.**";
        let tax = parse_taxonomy(md).unwrap();
        assert!(tax.span_ok("c/d"));
    }
}
