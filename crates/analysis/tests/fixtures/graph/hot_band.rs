//! Fixture: an allocation inside a `for_each_row_band` closure — hot
//! everywhere, not just in kernels.rs.

pub fn band_sum(ws: &mut Ws) -> f64 {
    let mut acc = 0.0;
    for_each_row_band(ws, |band| {
        let copied = band.to_vec();
        acc += copied.iter().sum::<f64>();
    });
    acc
}
