//! The `bbgnn-serve` server proper: accept loop, per-connection request
//! threads, and the worker pool that runs jobs on the scenario stack.
//!
//! ## Threading model
//!
//! * the **accept** thread hands each connection to its own short-lived
//!   connection thread, so a slow reader (or a long-lived SSE stream)
//!   never blocks other clients;
//! * each **connection** thread serves HTTP/1.1 requests back-to-back on
//!   one socket (keep-alive) until the client sends `Connection: close`,
//!   goes quiet past the read timeout, or the server drains;
//! * a **worker pool** of `--workers N` threads pops the FIFO queue and
//!   runs jobs concurrently. The machine's core budget ([`env_threads`],
//!   i.e. `BBGNN_THREADS` or available parallelism) is partitioned evenly
//!   across the pool, so two concurrent jobs don't oversubscribe the
//!   cores a sequential pair would have used; a spec with an explicit
//!   `threads` count still pins its own.
//!
//! [`env_threads`]: bbgnn_linalg::kernels::env_threads
//!
//! ## Per-job supervision
//!
//! Concurrency is safe because supervision is **scoped**: every job runs
//! inside its own [`SupervisionScope`](bbgnn_supervise::SupervisionScope)
//! (entered by `Job::run`, which also installs the spec's budget into
//! it), so `DELETE /jobs/:id`, a deadline, or an exhausted budget stops
//! exactly one job. The process-default supervision domain is left alone
//! — a SIGINT/SIGTERM through the shared handler still reaches every
//! running job and drains the whole server.

use crate::http::{self, ReadError, Request};
use crate::state::{JobPhase, JobRecord, Popped, Refused, ServerState};
use bbgnn_linalg::kernels::env_threads;
use bbgnn_linalg::ExecContext;
use bbgnn_scenario::job::{CellResult, Job, JobSpec};
use bbgnn_scenario::json::Json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a worker waits on the queue before re-checking for
/// drain/cancel conditions.
const WORKER_WAIT: Duration = Duration::from_millis(200);
/// Per-connection read timeout: a stalled client is dropped, the
/// connection thread exits. Doubles as the keep-alive idle timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// SSE tick: how often `/jobs/:id/events` re-snapshots the job.
const SSE_TICK: Duration = Duration::from_millis(150);

/// A running server: owns the accept thread and the worker pool.
///
/// Dropping the handle drains and joins the threads ([`shutdown`]
/// semantics), so a test that panics still tears the server down.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8787`; port `0` picks a free port —
    /// read it back from [`addr`](Self::addr)) with a single worker. The
    /// queue admits at most `capacity` pending jobs.
    pub fn start(addr: &str, capacity: usize) -> std::io::Result<Server> {
        Self::start_with(addr, capacity, 1)
    }

    /// [`start`](Self::start) with a pool of `workers` job runners
    /// (clamped to ≥ 1). Each worker's kernels get an even share of the
    /// process core budget, at least one core each.
    pub fn start_with(addr: &str, capacity: usize, workers: usize) -> std::io::Result<Server> {
        let workers = workers.max(1);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(capacity, workers));
        // Progress snapshots read the obs live mirror; the mirror works
        // with or without a trace sink.
        bbgnn_obs::live::enable();
        let worker_threads = (env_threads() / workers).max(1);
        let pool = (0..workers)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state, worker_threads))
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            workers: pool,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains and joins: no new submissions, running jobs finish
    /// (shutdown is graceful, not lossy), queued jobs stay queued forever.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops on its own (`POST /shutdown`, or a
    /// SIGINT/SIGTERM routed through the supervision layer), then joins.
    pub fn wait(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.state.stop();
        // The accept thread may be parked in `accept`; a throwaway
        // connection wakes it so it can observe the drain flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        bbgnn_obs::live::disable();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        if state.stopping() {
            break; // woken by the shutdown self-connect
        }
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let state = Arc::clone(state);
        // Detached: the thread exits with its connection (bounded by the
        // read timeout), and on drain every keep-alive loop closes after
        // the in-flight response.
        std::thread::spawn(move || serve_connection(stream, &state));
    }
}

/// Serves one socket until it closes: requests are answered in order on
/// the same connection (HTTP/1.1 keep-alive) unless the client asked to
/// close, the request was malformed, or the server is draining. An SSE
/// subscription takes the connection over and ends it.
fn serve_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    loop {
        let request = match http::read_request(&mut stream) {
            Ok(r) => r,
            Err(ReadError::Closed) => return,
            Err(e @ ReadError::TooLarge) => {
                return http::write_response(&mut stream, 413, &error_body(&e.to_string()), false);
            }
            Err(e) => {
                return http::write_response(&mut stream, 400, &error_body(&e.to_string()), false);
            }
        };
        let _span = bbgnn_obs::span!(
            "serve/request",
            method = request.method.as_str(),
            path = request.path.as_str()
        );
        let keep = !request.close && !state.stopping();
        if let Some(id) = sse_target(&request) {
            if state.job_phase(id).is_some() {
                drop(_span);
                return stream_events(&mut stream, state, id);
            }
            http::write_response(&mut stream, 404, &error_body(&format!("no job {id}")), keep);
        } else {
            let (status, body) = route(state, &request);
            http::write_response(&mut stream, status, &body, keep);
        }
        if !keep {
            return;
        }
    }
}

/// `GET /jobs/:id/events` → the job id, anything else → `None`.
fn sse_target(request: &Request) -> Option<u64> {
    if request.method != "GET" {
        return None;
    }
    request
        .path
        .strip_prefix("/jobs/")?
        .strip_suffix("/events")?
        .parse()
        .ok()
}

/// Streams a job's lifecycle as Server-Sent Events: one event per tick
/// named after the phase (`queued`/`progress`/`done`/`cancelled`), with
/// the `GET /jobs/:id` snapshot as compact-JSON data. The stream ends —
/// by connection close, as SSE specifies — after the terminal event, on
/// server drain, or when the client goes away.
fn stream_events(stream: &mut TcpStream, state: &ServerState, id: u64) {
    bbgnn_obs::counter("serve/sse_streams", 1);
    if http::write_sse_header(stream).is_err() {
        return;
    }
    loop {
        let Some((phase, doc)) = state.job_event(id) else {
            return;
        };
        let name = match phase {
            JobPhase::Queued => "queued",
            JobPhase::Running => "progress",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
        };
        if http::write_sse_event(stream, name, &doc.to_compact()).is_err() {
            return; // client went away
        }
        if matches!(phase, JobPhase::Done | JobPhase::Cancelled) || state.stopping() {
            return;
        }
        // lint: allow(clock) reason=SSE poll interval for live progress streaming, not experiment code
        std::thread::sleep(SSE_TICK);
    }
}

fn error_body(message: &str) -> String {
    Json::object([("error".to_string(), Json::string(message))]).to_pretty()
}

/// Routes one request to its handler; returns `(status, json body)`.
fn route(state: &Arc<ServerState>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => (
            200,
            Json::object([
                ("ok".to_string(), Json::Bool(true)),
                (
                    "queue_depth".to_string(),
                    Json::number_usize(state.queue_depth()),
                ),
                ("capacity".to_string(), Json::number_usize(state.capacity())),
                ("workers".to_string(), Json::number_usize(state.workers())),
                ("running".to_string(), Json::number_usize(state.running())),
            ])
            .to_pretty(),
        ),
        ("GET", "/jobs") => (200, state.jobs_json().to_pretty()),
        ("POST", "/jobs") => submit(state, &request.body),
        ("POST", "/shutdown") => {
            state.stop();
            (
                200,
                Json::object([("ok".to_string(), Json::Bool(true))]).to_pretty(),
            )
        }
        (method, path) => match (method, path.strip_prefix("/jobs/")) {
            (_, None) => (404, error_body(&format!("no such endpoint {path}"))),
            (method, Some(tail)) => match tail.parse::<u64>() {
                Err(_) => (404, error_body(&format!("bad job id {tail:?}"))),
                Ok(id) => match method {
                    "GET" => match state.job_json(id) {
                        Some(doc) => (200, doc.to_pretty()),
                        None => (404, error_body(&format!("no job {id}"))),
                    },
                    "DELETE" => match state.cancel(id) {
                        Some(new_state) => (
                            200,
                            Json::object([
                                ("id".to_string(), Json::number_u64(id)),
                                ("state".to_string(), Json::string(new_state)),
                            ])
                            .to_pretty(),
                        ),
                        None => (404, error_body(&format!("no job {id}"))),
                    },
                    _ => (405, error_body("use GET or DELETE on /jobs/:id")),
                },
            },
        },
    }
}

fn submit(state: &Arc<ServerState>, body: &str) -> (u16, String) {
    let spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    match state.submit(spec.clone()) {
        Ok(id) => (
            200,
            Json::object([
                ("id".to_string(), Json::number_u64(id)),
                ("key".to_string(), Json::string(spec.cell_key())),
                ("fingerprint".to_string(), Json::string(spec.fingerprint())),
            ])
            .to_pretty(),
        ),
        Err(Refused::Invalid(message)) => (400, error_body(&message)),
        Err(Refused::QueueFull) => {
            bbgnn_obs::counter("serve/jobs_rejected", 1);
            (
                429,
                error_body(&format!(
                    "queue full ({} pending); retry after a job finishes",
                    state.capacity()
                )),
            )
        }
        Err(Refused::Stopping) => {
            bbgnn_obs::counter("serve/jobs_rejected", 1);
            (503, error_body("server is draining"))
        }
    }
}

fn worker_loop(state: &Arc<ServerState>, worker_threads: usize) {
    loop {
        // A process-global cancel is never raised by a DELETE any more
        // (those cancel the job's own scope): it is the shared
        // SIGINT/SIGTERM handler, so drain the server.
        if bbgnn_supervise::cancel_requested() {
            state.stop();
        }
        match state.next_job(WORKER_WAIT) {
            Popped::Stop => break,
            Popped::Idle => continue,
            Popped::Work(id, job) => run_one(state, id, *job, worker_threads),
        }
    }
}

/// Runs one job: store-warm replay when an identical completed spec is
/// recorded, otherwise a full [`Job::run`] — which enters the job's own
/// supervision scope and installs its budget there, so nothing global
/// needs resetting between tenants.
fn run_one(state: &ServerState, id: u64, job: Job, worker_threads: usize) {
    let spec = job.spec().clone();
    let warm = replay(&spec, &job);
    let (result, warm) = match warm {
        Some(result) => (result, true),
        None => {
            // An explicit per-spec thread count wins; otherwise the job
            // gets this worker's even share of the core budget.
            let threads = if spec.threads > 0 {
                spec.threads
            } else {
                worker_threads
            };
            let ctx = ExecContext::with_threads(threads);
            let result = job.run(&ctx);
            if let Some(record) = JobRecord::from_result(&result) {
                bbgnn_store::publish(&JobRecord::key_for(&spec), &record);
            }
            (result, false)
        }
    };
    state.finish(id, result, warm);
    // Push span/counter aggregates to the trace sink (CI greps it) and
    // fold them into the live mirror for progress snapshots.
    bbgnn_obs::flush();
}

/// Store-warm path: a recorded result for this exact fingerprint, if the
/// replay rules admit it (see [`JobRecord::replayable_for`]).
fn replay(spec: &JobSpec, job: &Job) -> Option<CellResult> {
    let record: JobRecord = bbgnn_store::lookup(&JobRecord::key_for(spec))?;
    if !record.replayable_for(spec) {
        return None;
    }
    Some(CellResult {
        key: job.key().to_string(),
        value: record.value.clone(),
        outcome: record.outcome_enum(),
        attempts: record.attempts as usize,
        detail: None,
        artifacts: record.artifacts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};

    /// These tests mutate process-global state (supervision slates, the
    /// store, the obs live mirror); serialize them.
    static SERVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = SERVE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        bbgnn_supervise::shutdown();
        guard
    }

    /// Minimal HTTP client: one request, one response, connection closed
    /// (the server honors `Connection: close`, so `read_to_string` sees
    /// EOF instead of waiting out the keep-alive idle timeout).
    fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response: {raw:?}"));
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get_field<'a>(body: &'a str, field: &str) -> &'a str {
        let marker = format!("\"{field}\": ");
        let start = body
            .find(&marker)
            .unwrap_or_else(|| panic!("no {field} in {body}"))
            + marker.len();
        let rest = &body[start..];
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', '\n']).unwrap_or(rest.len());
        &rest[..end]
    }

    fn poll_until(addr: SocketAddr, id: &str, states: &[&str]) -> String {
        for _ in 0..2400 {
            let (status, body) = call(addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "{body}");
            if states.contains(&get_field(&body, "state")) {
                return body;
            }
            // lint: allow(clock) reason=test poll interval against a live server, not experiment code
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("job {id} never reached {states:?}");
    }

    const SMALL: &str =
        r#"{"dataset": "cora", "eval": {"kind": "accuracy", "runs": 1, "scale": 0.05}}"#;

    #[test]
    fn end_to_end_submit_poll_warm_replay_and_errors() {
        let _guard = locked();
        let store_dir = std::env::temp_dir().join("bbgnn_serve_test_store");
        let _ = std::fs::remove_dir_all(&store_dir);
        bbgnn_store::init_to_path(store_dir.to_str().unwrap()).unwrap();
        let server = Server::start("127.0.0.1:0", 4).unwrap();
        let addr = server.addr();

        // The CLI-equivalent expected value, computed in-process.
        let expected = Job::new(JobSpec::parse(SMALL).unwrap())
            .unwrap()
            .run(&ExecContext::from_env());
        assert_eq!(expected.key, "cora/Clean/GCN");

        // Malformed and invalid submissions bounce with named errors.
        let (status, body) = call(addr, "POST", "/jobs", "{not json");
        assert_eq!(status, 400, "{body}");
        let (status, body) = call(
            addr,
            "POST",
            "/jobs",
            r#"{"dataset": "cora", "defense": "Vaccine"}"#,
        );
        assert_eq!(status, 400);
        assert!(body.contains("defense"), "{body}");
        let (status, _) = call(addr, "GET", "/jobs/999", "");
        assert_eq!(status, 404);
        let (status, _) = call(addr, "PUT", "/jobs/1", "");
        assert_eq!(status, 405);

        // Cold run over HTTP matches the in-process run byte for byte.
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 200, "{body}");
        let id = get_field(&body, "id").to_string();
        let done = poll_until(addr, &id, &["done"]);
        assert_eq!(get_field(&done, "value"), expected.value);
        assert_eq!(get_field(&done, "warm"), "false");

        // Identical resubmission replays from the store: no training run.
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 200, "{body}");
        let id2 = get_field(&body, "id").to_string();
        assert_ne!(id2, id);
        let done2 = poll_until(addr, &id2, &["done"]);
        assert_eq!(get_field(&done2, "value"), expected.value);
        assert_eq!(get_field(&done2, "warm"), "true", "{done2}");

        let (status, body) = call(addr, "GET", "/health", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\": true"), "{body}");
        server.shutdown();
        bbgnn_store::shutdown();
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    #[test]
    fn delete_cancels_a_running_job_and_the_server_survives() {
        let _guard = locked();
        let server = Server::start("127.0.0.1:0", 1).unwrap();
        let addr = server.addr();

        // A deliberately heavy job so the DELETE lands mid-run.
        let heavy =
            r#"{"dataset": "cora", "defense": "Pro-GNN", "eval": {"runs": 3, "scale": 0.3}}"#;
        let (status, body) = call(addr, "POST", "/jobs", heavy);
        assert_eq!(status, 200, "{body}");
        let heavy_id = get_field(&body, "id").to_string();
        poll_until(addr, &heavy_id, &["running"]);

        // With the worker busy and capacity 1, a second job queues and a
        // third is refused.
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 200, "{body}");
        let queued_id = get_field(&body, "id").to_string();
        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 429, "{body}");

        // DELETE the running job: acknowledged as `cancelling`, resolves
        // to `cancelled`, and the queued job still runs to completion —
        // the cancel lives in the deleted job's own scope and must not
        // leak into its successor.
        let (status, body) = call(addr, "DELETE", &format!("/jobs/{heavy_id}"), "");
        assert_eq!(status, 200);
        assert_eq!(get_field(&body, "state"), "cancelling", "{body}");
        let gone = poll_until(addr, &heavy_id, &["cancelled"]);
        assert_eq!(get_field(&gone, "value"), bbgnn_scenario::job::FAILED_CELL);
        let done = poll_until(addr, &queued_id, &["done"]);
        assert_eq!(get_field(&done, "outcome"), "ok", "{done}");
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains() {
        let _guard = locked();
        let server = Server::start("127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        let (status, _) = call(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        server.wait();
    }

    #[test]
    fn keepalive_serves_sequential_requests_on_one_socket() {
        let _guard = locked();
        let server = Server::start("127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3 {
            write!(
                reader.get_mut(),
                "GET /health HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
            )
            .unwrap();
            let (status, headers) = read_head(&mut reader);
            assert_eq!(status, 200, "request {i}");
            let len: usize = header_value(&headers, "content-length").parse().unwrap();
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains("\"ok\": true"));
            assert!(
                header_value(&headers, "connection").contains("keep-alive"),
                "request {i}: {headers}"
            );
        }
        // An explicit close is honored: the server answers and hangs up.
        write!(
            reader.get_mut(),
            "GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap(); // EOF = server closed
        assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");
        server.shutdown();
    }

    /// Reads one response head off a keep-alive socket: `(status, headers)`.
    fn read_head(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let status: u16 = line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut headers = String::new();
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).unwrap();
            if h == "\r\n" {
                return (status, headers);
            }
            headers.push_str(&h);
        }
    }

    fn header_value(headers: &str, name: &str) -> String {
        headers
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
            })
            .unwrap_or_default()
    }

    #[test]
    fn two_workers_run_concurrent_jobs_byte_identical_to_sequential() {
        let _guard = locked();
        let server = Server::start_with("127.0.0.1:0", 4, 2).unwrap();
        let addr = server.addr();

        // Two different specs, expected values computed sequentially
        // in-process. Byte-identity is the §2 determinism contract: the
        // pool partitions cores, and thread count never changes results.
        let spec_a = SMALL;
        let spec_b =
            r#"{"dataset": "cora", "eval": {"kind": "accuracy", "runs": 1, "scale": 0.1}}"#;
        let expected_a = Job::new(JobSpec::parse(spec_a).unwrap())
            .unwrap()
            .run(&ExecContext::from_env());
        let expected_b = Job::new(JobSpec::parse(spec_b).unwrap())
            .unwrap()
            .run(&ExecContext::from_env());
        assert_ne!(expected_a.value, expected_b.value);

        let (status, body) = call(addr, "POST", "/jobs", spec_a);
        assert_eq!(status, 200, "{body}");
        let id_a = get_field(&body, "id").to_string();
        let (status, body) = call(addr, "POST", "/jobs", spec_b);
        assert_eq!(status, 200, "{body}");
        let id_b = get_field(&body, "id").to_string();

        let done_a = poll_until(addr, &id_a, &["done"]);
        let done_b = poll_until(addr, &id_b, &["done"]);
        assert_eq!(get_field(&done_a, "value"), expected_a.value);
        assert_eq!(get_field(&done_b, "value"), expected_b.value);
        server.shutdown();
    }

    #[test]
    fn deleting_one_concurrent_job_leaves_its_sibling_running() {
        let _guard = locked();
        let server = Server::start_with("127.0.0.1:0", 4, 2).unwrap();
        let addr = server.addr();

        // Two heavy jobs so both are mid-run when the DELETE lands.
        let heavy =
            r#"{"dataset": "cora", "defense": "Pro-GNN", "eval": {"runs": 3, "scale": 0.3}}"#;
        let heavy2 =
            r#"{"dataset": "cora", "defense": "Pro-GNN", "eval": {"runs": 3, "scale": 0.25}}"#;
        let (status, body) = call(addr, "POST", "/jobs", heavy);
        assert_eq!(status, 200, "{body}");
        let victim = get_field(&body, "id").to_string();
        let (status, body) = call(addr, "POST", "/jobs", heavy2);
        assert_eq!(status, 200, "{body}");
        let survivor = get_field(&body, "id").to_string();
        poll_until(addr, &victim, &["running"]);
        poll_until(addr, &survivor, &["running"]);

        // Cancel the first: only its own scope stops. The sibling — and
        // the server — keep going to a clean result.
        let (status, body) = call(addr, "DELETE", &format!("/jobs/{victim}"), "");
        assert_eq!(status, 200);
        assert_eq!(get_field(&body, "state"), "cancelling", "{body}");
        let gone = poll_until(addr, &victim, &["cancelled"]);
        assert_eq!(get_field(&gone, "value"), bbgnn_scenario::job::FAILED_CELL);
        let done = poll_until(addr, &survivor, &["done"]);
        assert_eq!(get_field(&done, "outcome"), "ok", "{done}");
        server.shutdown();
    }

    #[test]
    fn sse_stream_follows_a_job_to_its_terminal_event() {
        let _guard = locked();
        let server = Server::start("127.0.0.1:0", 2).unwrap();
        let addr = server.addr();

        // Unknown job: plain 404, not a stream.
        let (status, _) = call(addr, "GET", "/jobs/999/events", "");
        assert_eq!(status, 404);

        let (status, body) = call(addr, "POST", "/jobs", SMALL);
        assert_eq!(status, 200, "{body}");
        let id = get_field(&body, "id").to_string();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "GET /jobs/{id}/events HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap(); // server closes after terminal event
        let (head, frames) = raw.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/event-stream"), "{head}");

        // Every frame is `event:` + single-line `data:` + blank line, and
        // the stream ends with exactly one terminal event.
        let events: Vec<(&str, &str)> = frames
            .split("\n\n")
            .filter(|f| !f.trim().is_empty())
            .map(|f| {
                let mut lines = f.lines();
                let event = lines.next().unwrap().strip_prefix("event: ").unwrap();
                let data = lines.next().unwrap().strip_prefix("data: ").unwrap();
                assert_eq!(lines.next(), None, "multi-line frame: {f:?}");
                (event, data)
            })
            .collect();
        assert!(!events.is_empty());
        let (last_event, last_data) = events[events.len() - 1];
        assert_eq!(last_event, "done", "{events:?}");
        assert!(last_data.contains("\"state\":\"done\""), "{last_data}");
        assert!(
            events[..events.len() - 1]
                .iter()
                .all(|(e, _)| matches!(*e, "queued" | "progress")),
            "{events:?}"
        );
        server.shutdown();
    }
}
