//! Kernel parity and determinism tests (the bitwise contract).
//!
//! Every blocked/threaded kernel must produce output **bitwise identical**
//! to its naive reference implementation — not merely close — for every
//! shape and every worker count. Threads partition disjoint output rows
//! and the per-element accumulation order over the inner dimension never
//! changes, so `assert_eq!` on the raw `f64` buffers is the right check.

use bbgnn_linalg::kernels::{
    matmul_into, matmul_nt_into, matmul_nt_ref, matmul_ref, matmul_tn_into, matmul_tn_ref,
    spmm_into, spmm_ref, spmm_t_into,
};
use bbgnn_linalg::{CsrMatrix, DenseMatrix, ExecContext, ThreadPool};

/// Shapes covering the tricky cases: non-square, degenerate (empty /
/// single element), rank-1-ish thin products, and dimensions straddling
/// the kernel block sizes (`BLOCK_K = 128`, `BLOCK_J = 512`).
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (0, 3, 4),
        (3, 0, 4),
        (3, 4, 0),
        (2, 3, 5),
        (7, 13, 11),
        (1, 200, 1),
        (200, 1, 200),
        (127, 128, 129),
        (128, 128, 128),
        (130, 257, 64),
        (40, 600, 8),
    ]
}

fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::uniform(rows, cols, 1.0, seed)
}

fn sparse(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    // ~10% fill, deterministic, includes empty rows for small seeds.
    let triplets = (0..rows).flat_map(move |r| {
        (0..cols).filter_map(move |c| {
            let h = (r * 31 + c * 17 + seed as usize) % 10;
            (h == 0).then(|| (r, c, (r + 2 * c + 1) as f64 / 7.0))
        })
    });
    CsrMatrix::from_triplets(rows, cols, triplets)
}

#[test]
fn matmul_matches_reference_bitwise_across_shapes_and_threads() {
    for &(m, k, n) in &shapes() {
        let a = dense(m, k, 1);
        let b = dense(k, n, 2);
        let reference = matmul_ref(&a, &b);
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let mut out = DenseMatrix::zeros(m, n);
            matmul_into(&a, &b, &mut out, &pool);
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "matmul ({m}x{k})({k}x{n}) diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn matmul_tn_matches_reference_bitwise_across_shapes_and_threads() {
    for &(m, k, n) in &shapes() {
        // A is k×m here: the product is Aᵀ B.
        let a = dense(k, m, 3);
        let b = dense(k, n, 4);
        let reference = matmul_tn_ref(&a, &b);
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let mut out = DenseMatrix::zeros(m, n);
            matmul_tn_into(&a, &b, &mut out, &pool);
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "matmul_tn ({k}x{m})ᵀ({k}x{n}) diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn matmul_nt_matches_reference_bitwise_across_shapes_and_threads() {
    for &(m, k, n) in &shapes() {
        // B is n×k here: the product is A Bᵀ.
        let a = dense(m, k, 5);
        let b = dense(n, k, 6);
        let reference = matmul_nt_ref(&a, &b);
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let mut out = DenseMatrix::zeros(m, n);
            matmul_nt_into(&a, &b, &mut out, &pool);
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "matmul_nt ({m}x{k})({n}x{k})ᵀ diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn spmm_matches_reference_bitwise_across_shapes_and_threads() {
    for &(m, k, n) in &shapes() {
        let s = sparse(m, k, 7);
        let b = dense(k, n, 8);
        let reference = spmm_ref(&s, &b);
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let mut out = DenseMatrix::zeros(m, n);
            spmm_into(&s, &b, &mut out, &pool);
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "spmm ({m}x{k})({k}x{n}) diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn spmm_t_matches_dense_transpose_product() {
    // spmm_t computes Sᵀ B sequentially (scatter by column index). It must
    // agree with the dense product of the explicit transpose to ~ulp —
    // accumulation orders differ, so this one is approximate by design.
    for &(m, k, n) in &shapes() {
        let s = sparse(m, k, 9);
        let b = dense(m, n, 10);
        let mut out = DenseMatrix::zeros(k, n);
        spmm_t_into(&s, &b, &mut out);
        let dense_s = s.to_dense();
        let reference = matmul_tn_ref(&dense_s, &b);
        let diff = out.max_abs_diff(&reference);
        assert!(
            diff < 1e-12,
            "spmm_t ({m}x{k})ᵀ({m}x{n}) differs from dense by {diff}"
        );
    }
}

/// The headline determinism claim: a full forward/backward-sized product
/// chain through `ExecContext` is bitwise identical on 1 and N threads,
/// at a size comfortably above the parallelism threshold.
#[test]
fn exec_context_products_are_bitwise_identical_across_thread_counts() {
    let a = dense(300, 300, 11);
    let b = dense(300, 300, 12);
    let s = sparse(300, 300, 13);
    let ctx1 = ExecContext::new(1);
    let m1 = ctx1.matmul(&a, &b);
    let tn1 = ctx1.matmul_tn(&a, &b);
    let nt1 = ctx1.matmul_nt(&a, &b);
    let sp1 = ctx1.spmm(&s, &b);
    for threads in [2, 4, 8] {
        let ctx = ExecContext::new(threads);
        assert_eq!(
            ctx.matmul(&a, &b).as_slice(),
            m1.as_slice(),
            "matmul diverged at {threads} threads"
        );
        assert_eq!(
            ctx.matmul_tn(&a, &b).as_slice(),
            tn1.as_slice(),
            "matmul_tn diverged at {threads} threads"
        );
        assert_eq!(
            ctx.matmul_nt(&a, &b).as_slice(),
            nt1.as_slice(),
            "matmul_nt diverged at {threads} threads"
        );
        assert_eq!(
            ctx.spmm(&s, &b).as_slice(),
            sp1.as_slice(),
            "spmm diverged at {threads} threads"
        );
    }
}

/// Workspace recycling must never leak stale values into results: run the
/// same product repeatedly through one context (so buffers are reused) and
/// interleave differently-shaped products to churn the arena.
#[test]
fn workspace_reuse_does_not_corrupt_results() {
    let ctx = ExecContext::new(4);
    let a = dense(90, 110, 14);
    let b = dense(110, 70, 15);
    let reference = matmul_ref(&a, &b);
    for round in 0..5 {
        let out = ctx.matmul(&a, &b);
        assert_eq!(
            out.as_slice(),
            reference.as_slice(),
            "round {round} corrupted by buffer reuse"
        );
        // Churn: push a different shape through, then recycle everything.
        let other = ctx.matmul_tn(&b, &b);
        ctx.recycle(other);
        ctx.recycle(out);
    }
    assert!(
        ctx.reuse_hits() > 0,
        "arena was never hit — the reuse path is untested"
    );
}
