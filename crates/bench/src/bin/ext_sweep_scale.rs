//! Extension — scaling study of attack cost and strength.
//!
//! Table VII reports absolute attack times at one dataset size. This bin
//! sweeps the dataset scale and records, per attacker, wall-clock and the
//! GCN accuracy drop it buys — making the complexity claims of Sec. III-B2
//! (PEEGA's `O(δ d |V|²)`) and the paper's efficiency comparison visible
//! as curves rather than one column.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table, runner::gcn_accuracy};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("ext_sweep_scale"));

    let mut table = Table::new(&[
        "scale",
        "nodes",
        "edges",
        "attacker",
        "time(s)",
        "GCN acc after",
    ]);
    for &scale in &[0.06, 0.09, 0.12, 0.18] {
        let g = DatasetSpec::CoraLike.generate(scale, cfg.seed);
        let clean = gcn_accuracy(&g, cfg.runs, cfg.seed);
        table.push_row(vec![
            format!("{scale}"),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            "(clean)".to_string(),
            "-".to_string(),
            clean.to_string(),
        ]);
        let attackers: Vec<AttackerKind> = vec![
            AttackerKind::Peega(PeegaConfig {
                rate: cfg.rate,
                ..Default::default()
            }),
            AttackerKind::Metattack(MetattackConfig {
                rate: cfg.rate,
                retrain_every: 5,
                ..Default::default()
            }),
            AttackerKind::Pgd(PgdConfig {
                rate: cfg.rate,
                ..Default::default()
            }),
        ];
        for kind in attackers {
            let mut attacker = kind.build();
            let result = attacker.attack(&g);
            let acc = gcn_accuracy(&result.poisoned, cfg.runs, cfg.seed);
            table.push_row(vec![
                format!("{scale}"),
                g.num_nodes().to_string(),
                g.num_edges().to_string(),
                kind.name().to_string(),
                format!("{:.2}", result.elapsed.as_secs_f64()),
                acc.to_string(),
            ]);
            eprintln!("[scale {scale} {} done]", kind.name());
        }
    }
    table.emit(&cfg.out_dir, "ext_sweep_scale");
    println!("\ntarget: PEEGA and Metattack times grow superlinearly with n (dense");
    println!("gradients over |V|² candidates), PGD stays cheap; strength persists.");
}
