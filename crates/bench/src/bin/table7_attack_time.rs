//! Table VII — wall-clock poison-graph generation time (seconds) of every
//! attacker on the three datasets at perturbation rate 0.1.
//!
//! Reproduction targets: PEEGA is the fastest (or near-fastest) effective
//! attacker; GF-Attack and Metattack are the slowest; absolute numbers
//! differ from the paper's GPU testbed.

use bbgnn::prelude::*;
use bbgnn_bench::{config::ExpConfig, report::Table};

fn main() {
    let cfg = ExpConfig::from_args();
    println!("{}", cfg.banner("table7_attack_time"));

    let specs = DatasetSpec::paper_datasets();
    let mut headers = vec!["Attacker".to_string()];
    headers.extend(specs.iter().map(|s| format!("{} (s)", s.name())));
    let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    let graphs: Vec<Graph> = specs
        .iter()
        .map(|s| s.generate(cfg.scale, cfg.seed))
        .collect();
    for kind in AttackerKind::paper_rows(cfg.rate) {
        let mut cells = vec![kind.name().to_string()];
        for g in &graphs {
            let mut secs = Vec::with_capacity(cfg.runs);
            for _ in 0..cfg.runs {
                let mut attacker = kind.build();
                secs.push(attacker.attack(g).elapsed.as_secs_f64());
            }
            let stats = MeanStd::of(&secs);
            cells.push(format!("{:.2}±{:.2}", stats.mean, stats.std));
        }
        table.push_row(cells);
    }
    table.emit(&cfg.out_dir, "table7_attack_time");
    if let Some(stop) = bbgnn_supervise::stop_summary() {
        println!("{stop}");
    }
    println!("\npaper ordering: PEEGA < PGD < MinMax << Metattack, GF-Attack.");
}
