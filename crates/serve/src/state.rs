//! Shared server state: the job table, the bounded FIFO queue, and the
//! store-backed result cache.
//!
//! One `Mutex<Inner>` + `Condvar` pair coordinates the HTTP connection
//! threads (submit / snapshot / cancel / SSE) with the worker pool (pop /
//! finish). Locks are held only for table mutation — never across a job
//! run or an I/O call — and every acquisition goes through
//! [`PoisonError::into_inner`]: a panic while holding the lock must not
//! wedge the whole server.
//!
//! ## Per-job supervision
//!
//! Every entry holds its job's [`SupervisionScope`]: `DELETE /jobs/:id`
//! cancels that scope and nothing else, progress snapshots read that
//! scope's counters and nothing else. Nothing here touches the
//! process-default supervision domain, so concurrent jobs cannot stop or
//! account for one another, and a SIGINT (which *is* the default domain)
//! still drains the whole server.
//!
//! ## Admission
//!
//! The queue is bounded ([`ServerState::new`] takes the capacity):
//! submissions beyond it are rejected with `429` *before* any work is
//! done, so a flooded server degrades to fast rejections instead of
//! unbounded memory growth. A draining server (`shutdown requested`)
//! rejects everything with `503`.
//!
//! ## Result sharing
//!
//! Completed results are published to the content-addressed store under
//! the spec's [`fingerprint`](JobSpec::fingerprint) (when the store is
//! enabled), so a duplicate submission — same graph, config, and seed —
//! replays the recorded value instead of re-training. Replay rules guard
//! the §7 contract (see [`JobRecord::replayable_for`]): `ok`/`retried`
//! results replay for anyone; a `degraded` result only replays for a spec
//! that is itself budget-bounded (an unbounded submission is entitled to
//! the full run); `failed` results are never recorded.

use bbgnn_scenario::job::{CellResult, Job, JobSpec};
use bbgnn_scenario::json::Json;
use bbgnn_store::format::{Artifact, Reader, Writer};
use bbgnn_store::Key;
use bbgnn_supervise::SupervisionScope;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Where a submitted job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Picked up by the worker; supervision counters describe it.
    Running,
    /// Finished with a result (`ok`/`retried`/`degraded`/`failed`).
    Done,
    /// Cancelled — dequeued before running, or stopped mid-run by
    /// `DELETE /jobs/:id`.
    Cancelled,
}

impl JobPhase {
    /// Wire name, lowercase.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// One submitted job as the table tracks it.
struct JobEntry {
    spec: JobSpec,
    key: String,
    fingerprint: String,
    phase: JobPhase,
    /// The resolved job, parked here until a worker takes it.
    job: Option<Job>,
    /// The job's own supervision scope (shared with the [`Job`]):
    /// `DELETE` cancels it, progress snapshots read its counters. Scoped,
    /// so neither ever touches a sibling job.
    scope: Arc<SupervisionScope>,
    /// Result, once finished (also set for mid-run cancellations, whose
    /// outcome is `skipped`).
    result: Option<CellResult>,
    /// The result was replayed from the store, no training run.
    warm: bool,
}

struct Inner {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    stopping: bool,
}

/// What the worker gets from [`ServerState::next_job`].
pub enum Popped {
    /// Run this: id, spec, and the resolved job.
    Work(u64, Box<Job>),
    /// Nothing queued within the wait window.
    Idle,
    /// The server is draining; the worker should exit.
    Stop,
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Refused {
    /// Queue at capacity → `429`.
    QueueFull,
    /// Server draining → `503`.
    Stopping,
    /// Spec failed resolution (unknown names, bad ranges) → `400`.
    Invalid(String),
}

/// The shared server state. One instance per server, behind an `Arc`.
pub struct ServerState {
    inner: Mutex<Inner>,
    work: Condvar,
    capacity: usize,
    workers: usize,
}

fn lock(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn running_count(inner: &Inner) -> usize {
    inner
        .jobs
        .values()
        .filter(|e| e.phase == JobPhase::Running)
        .count()
}

fn job_json_locked(inner: &Inner, id: u64) -> Option<Json> {
    let entry = inner.jobs.get(&id)?;
    let mut pairs = vec![
        ("id".to_string(), Json::number_u64(id)),
        ("state".to_string(), Json::string(entry.phase.as_str())),
        ("key".to_string(), Json::string(&entry.key)),
        ("fingerprint".to_string(), Json::string(&entry.fingerprint)),
        ("spec".to_string(), entry.spec.to_json()),
    ];
    if entry.phase == JobPhase::Queued {
        let position = inner.queue.iter().position(|&q| q == id);
        if let Some(p) = position {
            pairs.push(("queue_position".to_string(), Json::number_usize(p)));
        }
    }
    if let Some(result) = &entry.result {
        let mut r = vec![
            ("value".to_string(), Json::string(&result.value)),
            ("outcome".to_string(), Json::string(result.outcome.as_str())),
            ("attempts".to_string(), Json::number_usize(result.attempts)),
            ("warm".to_string(), Json::Bool(entry.warm)),
            (
                "artifacts".to_string(),
                Json::Array(result.artifacts.iter().map(Json::string).collect()),
            ),
        ];
        if let Some(detail) = &result.detail {
            r.push(("detail".to_string(), Json::string(detail)));
        }
        pairs.push(("result".to_string(), Json::object(r)));
    }
    if entry.phase == JobPhase::Running {
        let counters = bbgnn_obs::live::snapshot();
        pairs.push((
            "progress".to_string(),
            Json::object([
                (
                    "epochs".to_string(),
                    Json::number_u64(entry.scope.epochs_used()),
                ),
                (
                    "queries".to_string(),
                    Json::number_u64(entry.scope.queries_used()),
                ),
                (
                    "peak_bytes".to_string(),
                    Json::number_u64(entry.scope.peak_bytes()),
                ),
                (
                    "counters".to_string(),
                    Json::object(
                        counters
                            .into_iter()
                            .map(|(k, v)| (k.to_string(), Json::number_u64(v))),
                    ),
                ),
            ]),
        ));
    }
    Some(Json::object(pairs))
}

impl ServerState {
    /// Fresh state with a queue bounded at `capacity` pending jobs,
    /// serviced by a pool of `workers` worker threads.
    pub fn new(capacity: usize, workers: usize) -> ServerState {
        ServerState {
            inner: Mutex::new(Inner {
                next_id: 1,
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                stopping: false,
            }),
            work: Condvar::new(),
            capacity,
            workers: workers.max(1),
        }
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The worker pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs currently in the `running` phase (≤ the pool size).
    pub fn running(&self) -> usize {
        running_count(&lock(&self.inner))
    }

    /// Pending (queued, not yet running) jobs.
    pub fn queue_depth(&self) -> usize {
        lock(&self.inner).queue.len()
    }

    /// Admission control + enqueue. Resolves the spec eagerly so unknown
    /// attacker/defender names bounce at submission, not at run time.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, Refused> {
        let job = Job::new(spec.clone()).map_err(|e| Refused::Invalid(e.to_string()))?;
        let mut inner = lock(&self.inner);
        if inner.stopping {
            return Err(Refused::Stopping);
        }
        if inner.queue.len() >= self.capacity {
            return Err(Refused::QueueFull);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let scope = job.scope();
        // Activate accounting up front: progress counters populate even
        // for an unbudgeted job (there is nothing to trip — activation
        // installs no cap).
        scope.activate();
        let entry = JobEntry {
            key: job.key().to_string(),
            fingerprint: spec.fingerprint(),
            spec,
            phase: JobPhase::Queued,
            scope,
            job: Some(job),
            result: None,
            warm: false,
        };
        inner.jobs.insert(id, entry);
        inner.queue.push_back(id);
        let depth = inner.queue.len();
        drop(inner);
        bbgnn_obs::counter("serve/jobs_accepted", 1);
        bbgnn_obs::event!("serve/queue_depth", depth = depth);
        bbgnn_obs::event!("serve/job_state", id = id, state = "queued");
        self.work.notify_one();
        Ok(id)
    }

    /// Worker side: waits up to `wait` for a queued job. Cancelled-while-
    /// queued entries are skipped here (their phase already says so).
    pub fn next_job(&self, wait: Duration) -> Popped {
        let mut inner = lock(&self.inner);
        loop {
            if inner.stopping {
                return Popped::Stop;
            }
            while let Some(id) = inner.queue.pop_front() {
                let Some(entry) = inner.jobs.get_mut(&id) else {
                    continue;
                };
                if entry.phase != JobPhase::Queued {
                    continue; // cancelled while queued
                }
                entry.phase = JobPhase::Running;
                let Some(job) = entry.job.take() else {
                    continue;
                };
                let busy = running_count(&inner);
                drop(inner);
                bbgnn_obs::event!("serve/job_state", id = id, state = "running");
                bbgnn_obs::event!("serve/workers_busy", busy = busy, workers = self.workers);
                return Popped::Work(id, Box::new(job));
            }
            let (guard, timeout) = self
                .work
                .wait_timeout(inner, wait)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if timeout.timed_out() {
                return Popped::Idle;
            }
        }
    }

    /// Worker side: records the finished result and classifies the final
    /// phase (`skipped` outcome → `cancelled`, everything else → `done`).
    pub fn finish(&self, id: u64, result: CellResult, warm: bool) {
        let mut inner = lock(&self.inner);
        let Some(entry) = inner.jobs.get_mut(&id) else {
            return;
        };
        let cancelled = result.outcome == bbgnn_scenario::job::CellOutcome::Skipped;
        entry.phase = if cancelled {
            JobPhase::Cancelled
        } else {
            JobPhase::Done
        };
        entry.result = Some(result);
        entry.warm = warm;
        let state = entry.phase.as_str();
        let busy = running_count(&inner);
        drop(inner);
        let ctr = if cancelled {
            "serve/jobs_cancelled"
        } else {
            "serve/jobs_completed"
        };
        bbgnn_obs::counter(ctr, 1);
        bbgnn_obs::event!("serve/job_state", id = id, state = state);
        bbgnn_obs::event!("serve/workers_busy", busy = busy, workers = self.workers);
    }

    /// `DELETE /jobs/:id`. Queued jobs flip straight to `cancelled`;
    /// running jobs get their *scope* cancelled — which every check site
    /// the job reaches observes, and no sibling job does — and report
    /// `cancelling` until their worker winds them down. Returns the
    /// resulting state name, or `None` for an unknown id.
    pub fn cancel(&self, id: u64) -> Option<&'static str> {
        let mut inner = lock(&self.inner);
        let entry = inner.jobs.get_mut(&id)?;
        match entry.phase {
            JobPhase::Queued => {
                entry.phase = JobPhase::Cancelled;
                entry.scope.cancel();
                entry.job = None;
                drop(inner);
                bbgnn_obs::counter("serve/jobs_cancelled", 1);
                bbgnn_obs::event!("serve/job_state", id = id, state = "cancelled");
                Some("cancelled")
            }
            JobPhase::Running => {
                entry.scope.cancel();
                drop(inner);
                bbgnn_obs::event!("serve/job_state", id = id, state = "cancelling");
                Some("cancelling")
            }
            JobPhase::Done => Some("done"),
            JobPhase::Cancelled => Some("cancelled"),
        }
    }

    /// Marks the server as draining and wakes the worker. Subsequent
    /// submissions are refused with `503`.
    pub fn stop(&self) {
        lock(&self.inner).stopping = true;
        self.work.notify_all();
    }

    /// Whether [`stop`](Self::stop) has been called.
    pub fn stopping(&self) -> bool {
        lock(&self.inner).stopping
    }

    /// The `GET /jobs/:id` snapshot. Progress numbers come from the
    /// job's own [`SupervisionScope`] — isolated per job even with a
    /// concurrent worker pool — plus the obs live-mirror counters (which
    /// are process-wide and so describe the whole pool).
    pub fn job_json(&self, id: u64) -> Option<Json> {
        let inner = lock(&self.inner);
        job_json_locked(&inner, id)
    }

    /// The phase of a job, or `None` for an unknown id.
    pub fn job_phase(&self, id: u64) -> Option<JobPhase> {
        lock(&self.inner).jobs.get(&id).map(|e| e.phase)
    }

    /// One SSE tick's view of a job: its phase and its snapshot document,
    /// read under a single lock so they cannot disagree.
    pub fn job_event(&self, id: u64) -> Option<(JobPhase, Json)> {
        let inner = lock(&self.inner);
        let phase = inner.jobs.get(&id)?.phase;
        let doc = job_json_locked(&inner, id)?;
        Some((phase, doc))
    }

    /// The `GET /jobs` index: id, state, and key per job, in id order.
    pub fn jobs_json(&self) -> Json {
        let inner = lock(&self.inner);
        Json::Array(
            inner
                .jobs
                .iter()
                .map(|(&id, e)| {
                    Json::object([
                        ("id".to_string(), Json::number_u64(id)),
                        ("state".to_string(), Json::string(e.phase.as_str())),
                        ("key".to_string(), Json::string(&e.key)),
                    ])
                })
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Store-backed result records
// ---------------------------------------------------------------------------

/// A completed job result as persisted to the content-addressed store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// Formatted cell value.
    pub value: String,
    /// Outcome name (`ok`/`retried`/`degraded`).
    pub outcome: String,
    /// Attempts the original run consumed.
    pub attempts: u64,
    /// Store keys the original run touched (gc liveness pinning).
    pub artifacts: Vec<String>,
}

impl JobRecord {
    /// The store key a spec's result lives under. The full fingerprint
    /// text is folded through the key's hash field *and* embedded in the
    /// artifact header (store contract: a hash collision degrades to a
    /// miss, it can never alias another tenant's result).
    pub fn key_for(spec: &JobSpec) -> Key {
        Key::new("job/result").hashed_str_field("spec", &spec.fingerprint())
    }

    /// Whether this recorded result may be served to `spec` without a
    /// run. Clean results replay for anyone with a matching fingerprint;
    /// a `degraded` (budget-truncated) result replays only for a spec
    /// that is itself bounded — an unbounded submission must get the
    /// full computation.
    pub fn replayable_for(&self, spec: &JobSpec) -> bool {
        match self.outcome.as_str() {
            "ok" | "retried" => true,
            "degraded" => spec.budget.is_some(),
            _ => false,
        }
    }

    /// The recorded outcome as the enum (unknown text degrades to `Ok`;
    /// the store only ever holds the three cacheable outcomes).
    pub fn outcome_enum(&self) -> bbgnn_scenario::job::CellOutcome {
        use bbgnn_scenario::job::CellOutcome;
        match self.outcome.as_str() {
            "retried" => CellOutcome::Retried,
            "degraded" => CellOutcome::Degraded,
            _ => CellOutcome::Ok,
        }
    }

    /// Builds the record a finished result should persist as, or `None`
    /// when the outcome must not be cached (`failed`, `skipped`).
    pub fn from_result(result: &CellResult) -> Option<JobRecord> {
        use bbgnn_scenario::job::CellOutcome;
        match result.outcome {
            CellOutcome::Ok | CellOutcome::Retried | CellOutcome::Degraded => Some(JobRecord {
                value: result.value.clone(),
                outcome: result.outcome.as_str().to_string(),
                attempts: result.attempts as u64,
                artifacts: result.artifacts.clone(),
            }),
            CellOutcome::Failed | CellOutcome::Skipped => None,
        }
    }
}

impl Artifact for JobRecord {
    const TAG: u8 = 6;
    const KIND: &'static str = "job/result";

    fn encode(&self, w: &mut Writer) {
        w.str(&self.value);
        w.str(&self.outcome);
        w.u64(self.attempts);
        w.usize(self.artifacts.len());
        for a in &self.artifacts {
            w.str(a);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, String> {
        let value = r.str()?;
        let outcome = r.str()?;
        let attempts = r.u64()?;
        let n = r.len_prefix(8)?;
        let mut artifacts = Vec::with_capacity(n);
        for _ in 0..n {
            artifacts.push(r.str()?);
        }
        Ok(JobRecord {
            value,
            outcome,
            attempts,
            artifacts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_scenario::job::{CellOutcome, EvalSpec};

    fn spec() -> JobSpec {
        JobSpec {
            eval: EvalSpec {
                runs: 1,
                scale: 0.05,
                ..EvalSpec::default()
            },
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_is_fifo_and_bounded() {
        let state = ServerState::new(2, 1);
        let a = state.submit(spec()).unwrap();
        let b = state.submit(spec()).unwrap();
        assert_eq!(state.submit(spec()), Err(Refused::QueueFull));
        assert_eq!(state.queue_depth(), 2);
        match state.next_job(Duration::from_millis(1)) {
            Popped::Work(id, job) => {
                assert_eq!(id, a);
                assert_eq!(job.key(), "cora/Clean/GCN");
            }
            _ => panic!("expected the first job"),
        }
        // One slot freed: admission is by queue depth, not table size.
        let c = state.submit(spec()).unwrap();
        assert!(c > b);
    }

    #[test]
    fn unknown_names_bounce_at_submission() {
        let state = ServerState::new(4, 1);
        let mut bad = spec();
        bad.defense = Some("Vaccine".to_string());
        match state.submit(bad) {
            Err(Refused::Invalid(msg)) => assert!(msg.contains("defense"), "{msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn queued_cancel_skips_the_worker_entirely() {
        let state = ServerState::new(4, 1);
        let id = state.submit(spec()).unwrap();
        assert_eq!(state.cancel(id), Some("cancelled"));
        assert!(matches!(
            state.next_job(Duration::from_millis(1)),
            Popped::Idle
        ));
        let snap = state.job_json(id).unwrap().to_pretty();
        assert!(snap.contains("\"state\": \"cancelled\""), "{snap}");
        assert_eq!(state.cancel(id), Some("cancelled"), "idempotent");
        assert_eq!(state.cancel(999), None, "unknown id");
    }

    #[test]
    fn finish_classifies_and_snapshots_report_results() {
        let state = ServerState::new(4, 1);
        let id = state.submit(spec()).unwrap();
        let Popped::Work(wid, job) = state.next_job(Duration::from_millis(1)) else {
            panic!("expected work");
        };
        assert_eq!(wid, id);
        state.finish(
            id,
            CellResult {
                key: job.key().to_string(),
                value: "0.80±0.01".to_string(),
                outcome: CellOutcome::Ok,
                attempts: 1,
                detail: None,
                artifacts: vec!["model|v1|x".to_string()],
            },
            false,
        );
        let snap = state.job_json(id).unwrap().to_pretty();
        assert!(snap.contains("\"state\": \"done\""), "{snap}");
        assert!(snap.contains("0.80±0.01"), "{snap}");
        assert!(snap.contains("\"warm\": false"), "{snap}");
    }

    #[test]
    fn stopping_refuses_submissions_and_stops_the_worker() {
        let state = ServerState::new(4, 1);
        state.stop();
        assert_eq!(state.submit(spec()), Err(Refused::Stopping));
        assert!(matches!(
            state.next_job(Duration::from_millis(1)),
            Popped::Stop
        ));
    }

    #[test]
    fn job_record_round_trips_and_gates_replay() {
        let record = JobRecord {
            value: "0.81±0.02".to_string(),
            outcome: "ok".to_string(),
            attempts: 1,
            artifacts: vec!["a".to_string(), "b".to_string()],
        };
        let mut w = Writer::new();
        record.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = JobRecord::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, record);

        let unbounded = spec();
        let bounded = JobSpec {
            budget: Some("epochs=50".to_string()),
            ..spec()
        };
        assert!(record.replayable_for(&unbounded));
        let degraded = JobRecord {
            outcome: "degraded".to_string(),
            ..record
        };
        assert!(!degraded.replayable_for(&unbounded));
        assert!(degraded.replayable_for(&bounded));
        // Same fingerprint → same key; budget does not split the cache.
        assert_eq!(
            JobRecord::key_for(&unbounded).text(),
            JobRecord::key_for(&bounded).text()
        );
    }
}
