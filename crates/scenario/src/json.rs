//! Minimal JSON reader/writer for checkpoint files, job specs, and the
//! `bbgnn-serve` wire format.
//!
//! The workspace is dependency-free by design (DESIGN.md §0), so those
//! formats are served by this small, strict JSON subset implementation:
//! objects, arrays, strings, finite numbers, booleans, and null — exactly
//! what `*.checkpoint.json` and `POST /jobs` bodies need. Strings
//! round-trip with standard escaping; numbers are written back verbatim
//! from the parsed text so re-serialization is byte-stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are sorted (BTreeMap) so serialization is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number, kept as its literal text for byte-stable output.
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Object(pairs.into_iter().collect())
    }

    /// String constructor.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Number constructor from a usize.
    pub fn number_usize(v: usize) -> Json {
        Json::Number(v.to_string())
    }

    /// Number constructor from a u64 (seeds, counters).
    pub fn number_u64(v: u64) -> Json {
        Json::Number(v.to_string())
    }

    /// Number constructor from a finite f64 (JSON has no NaN/inf).
    pub fn number_f64(v: f64) -> Json {
        assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
        Json::Number(format!("{v}"))
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number parsed as usize, if this is a number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as u64, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline —
    /// deterministic for a given value.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the form wire
    /// protocols that frame messages by line need (`bbgnn-serve`'s SSE
    /// `data:` lines). Deterministic for a given value; no trailing
    /// newline.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(n) => out.push_str(n),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(n) => out.push_str(n),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace). Returns a message describing the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut p = Parser {
            chars: &bytes,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing characters at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected {c:?} at offset {}, got {got:?}",
                self.pos - 1
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect_char(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::String(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_char('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Object(map)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Array(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {c:?}"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?}"))?;
        Ok(Json::Number(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_object() {
        let doc = Json::object([
            ("name".to_string(), Json::string("tables_main")),
            (
                "cells".to_string(),
                Json::object([(
                    "cora/PEEGA/GCN".to_string(),
                    Json::object([
                        ("value".to_string(), Json::string("62.10±1.20")),
                        ("attempts".to_string(), Json::number_usize(1)),
                    ]),
                )]),
            ),
        ]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Byte-stable: serializing the parse reproduces the text.
        assert_eq!(parsed.to_pretty(), text);
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::object([("k\"ey\n".to_string(), Json::string("a\\b\tc\u{1}"))]);
        let parsed = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn compact_form_is_one_line_and_roundtrips() {
        let doc = Json::object([
            ("id".to_string(), Json::number_u64(3)),
            ("state".to_string(), Json::string("running")),
            (
                "vals".to_string(),
                Json::Array(vec![Json::number_usize(1), Json::Null]),
            ),
            ("note".to_string(), Json::string("line\nbreak")),
            ("empty".to_string(), Json::object([])),
        ]);
        let compact = doc.to_compact();
        assert!(
            !compact.contains('\n'),
            "compact must be single-line: {compact}"
        );
        // Keys serialize sorted (BTreeMap), same as `to_pretty`.
        assert_eq!(
            compact,
            r#"{"empty":{},"id":3,"note":"line\nbreak","state":"running","vals":[1,null]}"#
        );
        assert_eq!(Json::parse(&compact).unwrap(), doc);
    }

    #[test]
    fn parses_arrays_bools_null_numbers() {
        let v = Json::parse(r#"[1, -2.5e3, true, false, null, "x"]"#).unwrap();
        match v {
            Json::Array(items) => {
                assert_eq!(items.len(), 6);
                assert_eq!(items[0].as_usize(), Some(1));
                assert_eq!(items[2], Json::Bool(true));
                assert_eq!(items[4], Json::Null);
                assert_eq!(items[5].as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
