// Fixture: taxonomy names pass, including `<name>` wildcard segments and
// `{a,b}` brace alternation; dynamic (non-literal) names are skipped.
pub fn well_named(obs: &Obs, name: &str) {
    let _g = span!("attack/peega", nodes = 3);
    event!("peega/perturb", kind = "edge");
    event!("peega/ascent_step", step = 1, objective = 0.5);
    obs.counter("train/epochs", 1);
    obs.kernel_timer("kernel/matmul_tn", 1, 2);
    obs.counter(name, 1);
}
