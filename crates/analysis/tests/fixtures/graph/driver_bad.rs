//! Fixture: an attack driver whose loop transitively reaches kernel work
//! with no supervision check anywhere on the path — `check_site` must
//! fire on the in-loop call in `sweep`.

pub struct Driver {
    pub iters: usize,
}

impl Driver {
    pub fn sweep(&self, ws: &mut Ws) {
        for _ in 0..self.iters {
            self.step(ws);
        }
    }

    fn step(&self, ws: &mut Ws) {
        matmul_into(ws);
    }

    pub fn idle(&self) -> usize {
        self.iters
    }
}
