//! Hand-rolled HTTP/1.1 subset: exactly what `bbgnn-serve` needs.
//!
//! The workspace is dependency-free by design (DESIGN.md §0), so the wire
//! layer is written against `std::io` directly. Scope is deliberately
//! narrow — one request per connection (`Connection: close`), JSON bodies
//! only, no chunked transfer, no keep-alive, no TLS. The server's clients
//! are `curl` and the CI harness; both speak this subset natively.
//!
//! Request reading is bounded everywhere: the header block is capped at
//! [`MAX_HEAD`] bytes and the body at [`MAX_BODY`] bytes, so a hostile or
//! broken client cannot balloon server memory. Over-long bodies surface
//! as [`ReadError::TooLarge`], which the server maps to `413`.

use std::io::{Read, Write};

/// Header-block cap (request line + headers, including the blank line).
pub const MAX_HEAD: usize = 16 * 1024;
/// Body cap — a [`JobSpec`](bbgnn_scenario::job::JobSpec) is well under a
/// kilobyte; anything near a megabyte is not a job submission.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, `DELETE`).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Request body, decoded per `Content-Length`.
    pub body: String,
}

/// Why a request could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// Syntactically broken request (maps to `400`).
    Malformed(String),
    /// Declared body exceeds [`MAX_BODY`] (maps to `413`).
    TooLarge,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::TooLarge => write!(f, "request body exceeds {MAX_BODY} bytes"),
        }
    }
}

fn malformed(m: impl Into<String>) -> ReadError {
    ReadError::Malformed(m.into())
}

/// Reads one request from `stream`.
///
/// Generic over `Read` so tests can drive it from a byte slice; the
/// server hands it a `TcpStream` with a read timeout installed (a stalled
/// client surfaces as an I/O error → `Malformed`, and the connection is
/// dropped).
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ReadError> {
    // Byte-at-a-time until the blank line. The header block is tiny and
    // read once per connection; simplicity beats a buffered scanner that
    // would over-read into the body.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(malformed("header block too large"));
        }
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            Ok(_) => return Err(malformed("connection closed mid-header")),
            Err(e) => return Err(malformed(format!("read: {e}"))),
        }
    }
    let head = String::from_utf8(head).map_err(|_| malformed("header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(malformed(format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version {version:?}")));
    }
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(format!("bad header line {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed(format!("bad content-length {value:?}")))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| malformed(format!("body read: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| malformed("body is not UTF-8"))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// The reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete JSON response and flushes. Best-effort: a peer
/// that hung up mid-write is its own problem, not the server's.
pub fn write_response<W: Write>(stream: &mut W, status: u16, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_a_post_with_body() {
        let r =
            req("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert_eq!(r.body, "{\"a\":1}");
    }

    #[test]
    fn parses_a_bodyless_get_and_case_insensitive_length() {
        let r = req("GET /jobs/3 HTTP/1.1\r\ncontent-length: 0\r\n\r\n").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/jobs/3"));
        assert_eq!(r.body, "");
    }

    #[test]
    fn rejects_garbage_loudly() {
        assert!(matches!(
            req("nonsense\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            req("GET /x SPDY/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            req("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        // Truncated body: declared longer than the stream.
        assert!(matches!(
            req("POST /jobs HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn caps_oversized_bodies() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(req(&raw), Err(ReadError::TooLarge));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "{\"error\":\"queue full\"}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"queue full\"}"));
    }
}
