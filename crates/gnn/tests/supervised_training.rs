//! Supervision-layer integration tests for the shared training loop.
//!
//! These live in their own integration-test binary (one process) because
//! they install process-global budgets; running them inside the unit-test
//! harness would interrupt unrelated training tests on sibling threads.
//! Within this binary the tests serialize on `LOCK` for the same reason.

use bbgnn_gnn::train::{train_node_classifier, TrainConfig};
use bbgnn_graph::datasets::DatasetSpec;
use bbgnn_linalg::DenseMatrix;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    bbgnn_supervise::shutdown();
    guard
}

fn fit(cfg: &TrainConfig) -> (bbgnn_gnn::train::TrainReport, Vec<DenseMatrix>) {
    let g = DatasetSpec::CoraLike.generate(0.05, 17);
    let d = g.feature_dim();
    let k = g.num_classes;
    let mut params = vec![DenseMatrix::glorot(d, k, 5)];
    let x = g.features.clone();
    let report = train_node_classifier(&mut params, &g, cfg, |tape, p, _| {
        let w = tape.var(p[0].clone());
        let xc = tape.constant(x.clone());
        let logits = tape.matmul(xc, w);
        (logits, vec![w])
    });
    (report, params)
}

#[test]
fn epoch_budget_interrupts_training_deterministically() {
    let _g = locked();
    let cfg = TrainConfig {
        epochs: 30,
        patience: 0,
        dropout: 0.0,
        ..TrainConfig::default()
    };

    // Unsupervised baseline for the prefix-determinism check below.
    let (full, _) = fit(&cfg);
    assert!(!full.interrupted);
    assert_eq!(full.epochs_run, 30);

    let budget = bbgnn_supervise::RunBudget {
        epochs: Some(3),
        ..bbgnn_supervise::RunBudget::default()
    };
    bbgnn_supervise::install_budget(&budget);
    let (capped, params_capped) = fit(&cfg);
    bbgnn_supervise::shutdown();

    assert!(capped.interrupted, "epoch budget must flag the report");
    assert_eq!(capped.epochs_run, 3, "stop lands exactly at the cap");
    assert!(
        !capped.diverged,
        "a budget stop is degradation, not failure"
    );

    // Bitwise prefix determinism: a 3-epoch-budgeted run equals a run
    // configured for 3 epochs outright (supervision only gates loop
    // continuation, never what a completed epoch computes).
    let three = TrainConfig { epochs: 3, ..cfg };
    let (_, params_three) = fit(&three);
    assert_eq!(
        params_capped, params_three,
        "budgeted prefix must be bitwise identical to a shorter run"
    );
}

#[test]
fn cancellation_stops_before_the_first_epoch() {
    let _g = locked();
    bbgnn_supervise::request_cancel();
    let cfg = TrainConfig {
        epochs: 10,
        patience: 0,
        dropout: 0.0,
        ..TrainConfig::default()
    };
    let (report, _) = fit(&cfg);
    bbgnn_supervise::shutdown();
    assert!(report.interrupted);
    assert_eq!(report.epochs_run, 0, "no epoch may start after a cancel");
}
