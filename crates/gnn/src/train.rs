//! Shared full-batch training loop.
//!
//! The loop guards every epoch with divergence sentinels: a non-finite
//! training loss or gradient triggers a rollback to the last parameter
//! snapshot that produced a finite loss, halves the learning rate, and
//! retries (bounded by [`MAX_DIVERGENCE_RECOVERIES`]). Outcomes are
//! surfaced in [`TrainReport`] — `diverged` / `divergence_recoveries` —
//! rather than panicking, so a poisoned run never takes the whole
//! experiment sweep down with it.

use bbgnn_autodiff::optim::Adam;
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_errors::first_non_finite;
use bbgnn_graph::Graph;
use bbgnn_linalg::{DenseMatrix, ExecContext};
use std::rc::Rc;
use std::time::Instant;

/// Bound on rollback + learning-rate-halving retries per training run.
pub const MAX_DIVERGENCE_RECOVERIES: usize = 3;

/// Forward-pass mode, threaded into every model's `forward` closure.
///
/// Replaces the old `epoch == usize::MAX` sentinel: dropout masks and
/// stochastic regularizers (RGCN's reparameterization noise, SimPGCN's
/// self-supervised term) fire only under [`Mode::Train`], whose epoch
/// index seeds them deterministically. [`Mode::Eval`] is a pure
/// deterministic inference pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training pass; `epoch` seeds dropout masks and sampled noise so a
    /// rerun with the same config is bitwise identical.
    Train {
        /// Zero-based epoch index.
        epoch: usize,
    },
    /// Inference pass: dropout and stochastic regularizers disabled.
    Eval,
}

impl Mode {
    /// `Some(epoch)` during training, `None` at inference. The idiomatic
    /// dropout guard is `if let Some(epoch) = mode.train_epoch() { … }`.
    pub fn train_epoch(self) -> Option<usize> {
        match self {
            Mode::Train { epoch } => Some(epoch),
            Mode::Eval => None,
        }
    }

    /// True for [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train { .. })
    }
}

/// Hyper-parameters shared by every trained model in the workspace.
/// Defaults follow the reference GCN implementation (Adam, `lr = 0.01`,
/// `weight_decay = 5e-4`, 200 epochs, early stopping patience 30).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    /// Dropout probability used by models that support it.
    pub dropout: f64,
    /// Base RNG seed (initialization and dropout masks derive from it).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.01,
            weight_decay: 5e-4,
            epochs: 200,
            patience: 30,
            dropout: 0.5,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Copy of `self` with a different seed — used for repeated runs.
    pub fn with_seed(&self, seed: u64) -> Self {
        Self {
            seed,
            ..self.clone()
        }
    }

    /// A fast configuration for unit tests.
    pub fn fast_test() -> Self {
        Self {
            epochs: 60,
            patience: 60,
            dropout: 0.0,
            ..Self::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Epochs actually executed (≤ configured epochs under early stopping).
    pub epochs_run: usize,
    /// Best validation accuracy observed.
    pub best_val_accuracy: f64,
    /// Final training loss.
    pub final_loss: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Rollback + LR-halving recoveries performed after a non-finite loss
    /// or gradient was detected.
    pub divergence_recoveries: usize,
    /// True when training aborted because the recovery budget ran out; the
    /// parameters are the last snapshot that produced a finite loss.
    pub diverged: bool,
    /// True when the supervision layer (cancellation, deadline, or epoch
    /// budget) stopped the run at an epoch boundary. The parameters are
    /// the best snapshot observed so far — degraded, not failed.
    pub interrupted: bool,
}

/// Trains `params` with Adam by repeatedly calling `forward` to build the
/// loss and logits, early-stopping on validation accuracy.
///
/// `forward(tape, params, mode)` must register each parameter with
/// `tape.var` *in order* and return `(logits, param_ids)`; it receives
/// [`Mode::Train`] on optimization passes and [`Mode::Eval`] on the
/// early-stopping validation pass.
///
/// This is the one training loop shared by GCN, GAT, the linear surrogate,
/// and every trained defender, so early stopping and bookkeeping behave
/// identically across the paper's table rows.
pub fn train_node_classifier(
    params: &mut Vec<DenseMatrix>,
    g: &Graph,
    cfg: &TrainConfig,
    mut forward: impl FnMut(&mut Tape, &[DenseMatrix], Mode) -> (TensorId, Vec<TensorId>),
) -> TrainReport {
    train_with_regularizer(params, g, cfg, |tape, p, mode| {
        let (logits, ids) = forward(tape, p, mode);
        (logits, ids, None)
    })
}

/// [`train_node_classifier`] with an optional artifact-store warm start.
///
/// `salt` carries the model's identity (architecture + every shape knob);
/// this function completes it with the graph's content hash and every
/// [`TrainConfig`] field, so two trainings share an artifact iff their
/// inputs are bit-for-bit identical. On a store hit the cached weights
/// are installed and the original run's report returned **without
/// opening a `train/fit` span or running a single epoch** — a warm start
/// is observably a load, not a training. Call sites should gate salt
/// construction on [`bbgnn_store::enabled`] so content hashing costs
/// nothing when no store is active.
pub fn train_node_classifier_keyed(
    params: &mut Vec<DenseMatrix>,
    g: &Graph,
    cfg: &TrainConfig,
    salt: Option<bbgnn_store::Key>,
    mut forward: impl FnMut(&mut Tape, &[DenseMatrix], Mode) -> (TensorId, Vec<TensorId>),
) -> TrainReport {
    train_with_regularizer_keyed(params, g, cfg, salt, |tape, p, mode| {
        let (logits, ids) = forward(tape, p, mode);
        (logits, ids, None)
    })
}

/// [`train_with_regularizer`] with the warm-start behaviour of
/// [`train_node_classifier_keyed`].
pub fn train_with_regularizer_keyed(
    params: &mut Vec<DenseMatrix>,
    g: &Graph,
    cfg: &TrainConfig,
    salt: Option<bbgnn_store::Key>,
    forward: impl FnMut(&mut Tape, &[DenseMatrix], Mode) -> (TensorId, Vec<TensorId>, Option<TensorId>),
) -> TrainReport {
    let key = salt
        .filter(|_| bbgnn_store::enabled())
        .map(|s| complete_model_key(s, g, cfg));
    if let Some(key) = &key {
        if let Some(model) = bbgnn_store::lookup::<bbgnn_store::TrainedModel>(key) {
            // Shape check: a filename collision already degraded to a miss
            // inside the store (key text is compared), so a mismatch here
            // can only mean the call site changed its parameter layout
            // without changing its salt — retrain rather than trust it.
            let shapes_match = model.weights.len() == params.len()
                && model
                    .weights
                    .iter()
                    .zip(params.iter())
                    .all(|(a, b)| a.rows() == b.rows() && a.cols() == b.cols());
            if shapes_match {
                *params = model.weights;
                return report_from_store(&model.report);
            }
        }
    }
    let report = train_with_regularizer(params, g, cfg, forward);
    // Never cache an interrupted (budget/cancel-degraded) training: a later
    // unconstrained run with the same key must retrain fully, not inherit a
    // partially-trained model.
    if let Some(key) = key.as_ref().filter(|_| !report.interrupted) {
        bbgnn_store::publish(
            key,
            &bbgnn_store::TrainedModel {
                weights: params.clone(),
                report: report_to_store(&report),
            },
        );
    }
    report
}

/// Extends a model salt into a full cache key: graph content hash plus
/// every training hyperparameter (float `Display` is shortest-roundtrip,
/// hence lossless).
fn complete_model_key(salt: bbgnn_store::Key, g: &Graph, cfg: &TrainConfig) -> bbgnn_store::Key {
    salt.hash_field("graph", g.content_hash())
        .field("lr", cfg.lr)
        .field("wd", cfg.weight_decay)
        .field("epochs", cfg.epochs)
        .field("patience", cfg.patience)
        .field("dropout", cfg.dropout)
        .field("seed", cfg.seed)
}

fn report_to_store(r: &TrainReport) -> bbgnn_store::ModelReport {
    bbgnn_store::ModelReport {
        epochs_run: r.epochs_run,
        best_val_accuracy: r.best_val_accuracy,
        final_loss: r.final_loss,
        seconds: r.seconds,
        divergence_recoveries: r.divergence_recoveries,
        diverged: r.diverged,
    }
}

fn report_from_store(r: &bbgnn_store::ModelReport) -> TrainReport {
    TrainReport {
        epochs_run: r.epochs_run,
        best_val_accuracy: r.best_val_accuracy,
        final_loss: r.final_loss,
        seconds: r.seconds,
        divergence_recoveries: r.divergence_recoveries,
        diverged: r.diverged,
        // Interrupted runs are never published (see the publish gate), so a
        // store hit is by construction a completed training.
        interrupted: false,
    }
}

/// Like [`train_node_classifier`], but `forward` may return an extra scalar
/// loss tensor (a regularizer — RGCN's KL term, SimPGCN's self-supervised
/// similarity loss) that is added to the cross-entropy before backward.
pub fn train_with_regularizer(
    params: &mut Vec<DenseMatrix>,
    g: &Graph,
    cfg: &TrainConfig,
    mut forward: impl FnMut(
        &mut Tape,
        &[DenseMatrix],
        Mode,
    ) -> (TensorId, Vec<TensorId>, Option<TensorId>),
) -> TrainReport {
    // lint: allow(clock) reason=elapsed wall time is reported in TrainReport and never read back into numerics
    let start = Instant::now();
    let _span = bbgnn_obs::span!(
        "train/fit",
        epochs = cfg.epochs,
        lr = cfg.lr,
        patience = cfg.patience,
        nodes = g.num_nodes(),
        seed = cfg.seed
    );
    // One execution context for the whole run: every epoch's tape shares
    // the thread pool and recycles its tensor buffers through the same
    // workspace arena, so epochs after the first allocate almost nothing.
    let ctx = Rc::new(ExecContext::from_env());
    let labels = Rc::new(g.labels.clone());
    let train_rows = Rc::new(g.split.train.clone());
    let mut lr = cfg.lr;
    let mut opt = Adam::new(lr, cfg.weight_decay, params);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_params: Option<Vec<DenseMatrix>> = None;
    // Snapshot of the parameters that last produced a finite loss and
    // gradient — the rollback target of the divergence sentinel.
    let mut last_good = params.clone();
    let mut divergence_recoveries = 0usize;
    let mut diverged = false;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;
    let mut final_loss = f64::NAN;
    let mut interrupted = false;
    for epoch in 0..cfg.epochs {
        // Cooperative stop site (DESIGN.md §11): epoch boundary. A stop
        // keeps the best-so-far parameters and flags the report degraded;
        // completed epochs are untouched, preserving bitwise determinism.
        if bbgnn_supervise::stop_reason("train/epoch").is_some() {
            interrupted = true;
            break;
        }
        epochs_run = epoch + 1;
        let mut tape = Tape::with_context(Rc::clone(&ctx));
        let (logits, ids, extra) = forward(&mut tape, params, Mode::Train { epoch });
        let ce = tape.cross_entropy(logits, Rc::clone(&labels), Rc::clone(&train_rows));
        let loss = match extra {
            Some(reg) => tape.add(ce, reg),
            None => ce,
        };
        final_loss = tape.value(loss).get(0, 0);
        let mut unstable = !final_loss.is_finite();
        let mut grads: Vec<Option<&DenseMatrix>> = Vec::new();
        if !unstable {
            tape.backward(loss);
            grads = ids.iter().map(|&id| tape.grad(id)).collect();
            unstable = grads
                .iter()
                .any(|grad| grad.is_some_and(|m| first_non_finite(m.as_slice()).is_some()));
        }
        // Telemetry (tracing builds only): global gradient L2 norm and
        // training accuracy off the already-materialized forward pass.
        let mut grad_norm = f64::NAN;
        let mut train_acc = f64::NAN;
        if bbgnn_obs::enabled() {
            grad_norm = grads
                .iter()
                .flatten()
                .flat_map(|m| m.as_slice())
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt();
            let preds = tape.value(logits).row_argmax();
            train_acc = crate::eval::accuracy(&preds, &g.labels, &g.split.train);
        }
        if unstable {
            if divergence_recoveries >= MAX_DIVERGENCE_RECOVERIES {
                // Recovery budget exhausted: keep the last healthy
                // parameters and report the divergence instead of stepping
                // on garbage (or panicking).
                params.clone_from(&last_good);
                diverged = true;
                bbgnn_obs::event!("train/diverged", epoch = epoch, loss = final_loss);
                break;
            }
            divergence_recoveries += 1;
            params.clone_from(&last_good);
            lr *= 0.5;
            bbgnn_obs::counter("train/divergence_rollbacks", 1);
            bbgnn_obs::event!("train/rollback", epoch = epoch, lr = lr, loss = final_loss);
            // Fresh optimizer: the Adam moments were accumulated on the
            // trajectory that just blew up.
            opt = Adam::new(lr, cfg.weight_decay, params);
            continue;
        }
        last_good.clone_from(params);
        opt.step(params, &grads);

        let mut val_acc = f64::NAN;
        let mut stop_early = false;
        if cfg.patience > 0 && !g.split.valid.is_empty() {
            // Evaluation pass without dropout (`Mode::Eval` switches the
            // forward closure to inference).
            let mut eval_tape = Tape::with_context(Rc::clone(&ctx));
            let (logits, _, _) = forward(&mut eval_tape, params, Mode::Eval);
            let preds = eval_tape.value(logits).row_argmax();
            val_acc = crate::eval::accuracy(&preds, &g.labels, &g.split.valid);
            if val_acc > best_val {
                best_val = val_acc;
                best_params = Some(params.clone());
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    stop_early = true;
                }
            }
        }
        bbgnn_obs::counter("train/epochs", 1);
        bbgnn_supervise::note_epochs(1);
        bbgnn_obs::event!(
            "train/epoch",
            epoch = epoch,
            loss = final_loss,
            grad_norm = grad_norm,
            train_acc = train_acc,
            val_acc = val_acc
        );
        if stop_early {
            bbgnn_obs::counter("train/early_stops", 1);
            bbgnn_obs::event!("train/early_stop", epoch = epoch, best_val = best_val);
            break;
        }
    }
    if let Some(best) = best_params {
        *params = best;
    }
    TrainReport {
        epochs_run,
        best_val_accuracy: if best_val.is_finite() { best_val } else { 0.0 },
        final_loss,
        seconds: start.elapsed().as_secs_f64(),
        divergence_recoveries,
        diverged,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;
    use std::rc::Rc;

    /// Logistic regression on features via the shared loop learns a
    /// feature-separable dataset.
    #[test]
    fn shared_loop_trains_logistic_regression() {
        let g = DatasetSpec::CoraLike.generate(0.06, 11);
        let d = g.feature_dim();
        let k = g.num_classes;
        let mut params = vec![DenseMatrix::glorot(d, k, 1)];
        let x = g.features.clone();
        let cfg = TrainConfig {
            epochs: 100,
            patience: 100,
            dropout: 0.0,
            ..Default::default()
        };
        let report = train_node_classifier(&mut params, &g, &cfg, |tape, p, _| {
            let w = tape.var(p[0].clone());
            let xc = tape.constant(x.clone());
            let logits = tape.matmul(xc, w);
            (logits, vec![w])
        });
        assert!(report.epochs_run > 0);
        assert!(report.final_loss.is_finite());
        // Evaluate.
        let logits = g.features.matmul(&params[0]);
        let acc = crate::eval::accuracy(&logits.row_argmax(), &g.labels, &g.split.test);
        // Features are deliberately noisy (purity calibration, DESIGN.md
        // §3): logistic regression alone lands well above chance (1/7)
        // but far from the GCN's accuracy.
        assert!(
            acc > 0.2,
            "logistic regression should beat chance, got {acc}"
        );
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let g = DatasetSpec::CoraLike.generate(0.05, 12);
        let d = g.feature_dim();
        let k = g.num_classes;
        let mut params = vec![DenseMatrix::glorot(d, k, 2)];
        let x = Rc::new(g.features.clone());
        let cfg = TrainConfig {
            epochs: 500,
            patience: 5,
            dropout: 0.0,
            ..Default::default()
        };
        let report = train_node_classifier(&mut params, &g, &cfg, |tape, p, _| {
            let w = tape.var(p[0].clone());
            let xc = tape.constant((*x).clone());
            let logits = tape.matmul(xc, w);
            (logits, vec![w])
        });
        assert!(
            report.epochs_run < 500,
            "patience must trigger before the epoch cap"
        );
        assert!(report.best_val_accuracy > 0.0);
    }

    /// Trains logistic regression with a regularizer that poisons the loss
    /// with NaN on the epochs in `poison`, returning the report.
    fn train_with_poisoned_epochs(poison: impl Fn(usize) -> bool) -> TrainReport {
        let g = DatasetSpec::CoraLike.generate(0.05, 13);
        let d = g.feature_dim();
        let k = g.num_classes;
        let mut params = vec![DenseMatrix::glorot(d, k, 3)];
        let x = Rc::new(g.features.clone());
        let cfg = TrainConfig {
            epochs: 30,
            patience: 0,
            dropout: 0.0,
            ..Default::default()
        };
        train_with_regularizer(&mut params, &g, &cfg, |tape, p, mode| {
            let w = tape.var(p[0].clone());
            let xc = tape.constant((*x).clone());
            let logits = tape.matmul(xc, w);
            let reg = mode
                .train_epoch()
                .filter(|&e| poison(e))
                .map(|_| tape.constant(DenseMatrix::filled(1, 1, f64::NAN)));
            (logits, vec![w], reg)
        })
    }

    #[test]
    fn mode_accessors() {
        assert_eq!(Mode::Train { epoch: 3 }.train_epoch(), Some(3));
        assert_eq!(Mode::Eval.train_epoch(), None);
        assert!(Mode::Train { epoch: 0 }.is_train());
        assert!(!Mode::Eval.is_train());
    }

    #[test]
    fn transient_divergence_rolls_back_and_recovers() {
        let report = train_with_poisoned_epochs(|epoch| epoch == 3);
        assert_eq!(report.divergence_recoveries, 1, "one rollback expected");
        assert!(!report.diverged, "a transient NaN must not abort training");
        assert!(report.final_loss.is_finite());
        assert_eq!(report.epochs_run, 30);
    }

    #[test]
    fn persistent_divergence_aborts_with_report_not_panic() {
        let report = train_with_poisoned_epochs(|_| true);
        assert!(report.diverged, "persistent NaN must surface as diverged");
        assert_eq!(report.divergence_recoveries, MAX_DIVERGENCE_RECOVERIES);
        assert_eq!(
            report.epochs_run,
            MAX_DIVERGENCE_RECOVERIES + 1,
            "training must stop right after the budget runs out"
        );
    }
}
