//! SimPGCN (Jin et al. 2021) — similarity-preserving defense.
//!
//! SimPGCN runs two propagation channels — the given (possibly poisoned)
//! graph and a feature-kNN graph — and blends them per node with learned
//! gates, plus a gated self term that preserves each node's own features:
//!
//! ```text
//!   H^{l+1} = s ∘ (A_n H^l W) + (1 − s) ∘ (A_f H^l W) + e ∘ (H^l W)
//!   s = sigmoid(X w_s),  e = sigmoid(X w_e)          (per-node gates)
//! ```
//!
//! A self-supervised regularizer keeps embeddings similarity-preserving:
//! for sampled node pairs, the squared embedding distance of the hidden
//! layer is regressed onto the pair's feature dissimilarity
//! `1 − cos(x_u, x_v)`. Simplifications vs. the original (DESIGN.md §3):
//! gates are computed from the raw features at every layer, and the SSL
//! pairs are sampled uniformly rather than from the similarity extremes.

use crate::Defender;
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_gnn::train::{train_with_regularizer_keyed, Mode, TrainConfig, TrainReport};
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::dense::cosine_similarity;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// SimPGCN configuration.
#[derive(Clone, Debug)]
pub struct SimPGcnConfig {
    /// Hidden width.
    pub hidden: usize,
    /// kNN neighbor count of the feature graph.
    pub knn: usize,
    /// Number of sampled SSL node pairs.
    pub ssl_pairs: usize,
    /// SSL loss weight.
    pub ssl_weight: f64,
    /// Training configuration.
    pub train: TrainConfig,
}

impl Default for SimPGcnConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            knn: 20,
            ssl_pairs: 128,
            ssl_weight: 0.1,
            train: TrainConfig::default(),
        }
    }
}

/// The SimPGCN defender.
pub struct SimPGcn {
    /// Configuration.
    pub config: SimPGcnConfig,
    /// Parameter layout: `[W0, W1, w_s, w_e]`.
    params: Vec<DenseMatrix>,
    trained_graphs: Option<(Rc<CsrMatrix>, Rc<CsrMatrix>)>,
}

impl SimPGcn {
    /// Creates an untrained SimPGCN defender.
    pub fn new(config: SimPGcnConfig) -> Self {
        Self {
            config,
            params: Vec::new(),
            trained_graphs: None,
        }
    }

    fn init_params(&self, in_dim: usize, num_classes: usize) -> Vec<DenseMatrix> {
        let s = self.config.train.seed;
        vec![
            DenseMatrix::glorot(in_dim, self.config.hidden, s),
            DenseMatrix::glorot(self.config.hidden, num_classes, s.wrapping_add(1)),
            DenseMatrix::glorot(in_dim, 1, s.wrapping_add(2)),
            DenseMatrix::glorot(in_dim, 1, s.wrapping_add(3)),
        ]
    }

    /// Normalized feature-kNN propagation graph of `g`.
    fn knn_graph(&self, g: &Graph) -> CsrMatrix {
        let edges = crate::knn_feature_edges(&g.features, self.config.knn);
        let n = g.num_nodes();
        let triplets = edges.iter().flat_map(|&(u, v)| [(u, v, 1.0), (v, u, 1.0)]);
        CsrMatrix::from_triplets(n, n, triplets).gcn_normalize()
    }

    /// Sampled SSL pairs with their feature-dissimilarity targets, as
    /// `(selector_a, selector_b, targets)`.
    fn ssl_pairs(&self, g: &Graph) -> (Rc<CsrMatrix>, Rc<CsrMatrix>, Rc<DenseMatrix>) {
        let n = g.num_nodes();
        let m = self.config.ssl_pairs.min(n * (n - 1) / 2).max(1);
        let mut rng = StdRng::seed_from_u64(self.config.train.seed.wrapping_add(9999));
        let mut ta = Vec::with_capacity(m);
        let mut tb = Vec::with_capacity(m);
        let mut targets = Vec::with_capacity(m);
        for row in 0..m {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            ta.push((row, a, 1.0));
            tb.push((row, b, 1.0));
            targets.push(1.0 - cosine_similarity(g.features.row(a), g.features.row(b)));
        }
        (
            Rc::new(CsrMatrix::from_triplets(m, n, ta)),
            Rc::new(CsrMatrix::from_triplets(m, n, tb)),
            Rc::new(DenseMatrix::from_vec(m, 1, targets)),
        )
    }

    /// One gated layer: `s∘(A_n h W) + (1−s)∘(A_f h W) + e∘(h W)`.
    #[allow(clippy::too_many_arguments)] // one arg per term of the equation
    fn gated_layer(
        tape: &mut Tape,
        h: TensorId,
        w: TensorId,
        an: &Rc<CsrMatrix>,
        af: &Rc<CsrMatrix>,
        s_gate: TensorId,
        s_comp: TensorId,
        e_gate: TensorId,
    ) -> TensorId {
        let hw = tape.matmul(h, w);
        let p_graph = tape.spmm(Rc::clone(an), hw);
        let p_knn = tape.spmm(Rc::clone(af), hw);
        let g1 = tape.scale_rows(p_graph, s_gate);
        let g2 = tape.scale_rows(p_knn, s_comp);
        let g3 = tape.scale_rows(hw, e_gate);
        let t = tape.add(g1, g2);
        tape.add(t, g3)
    }

    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        tape: &mut Tape,
        params: &[DenseMatrix],
        an: &Rc<CsrMatrix>,
        af: &Rc<CsrMatrix>,
        x: &DenseMatrix,
        ssl: Option<&(Rc<CsrMatrix>, Rc<CsrMatrix>, Rc<DenseMatrix>)>,
        mode: Mode,
    ) -> (TensorId, Vec<TensorId>, Option<TensorId>) {
        let ids: Vec<TensorId> = params.iter().map(|p| tape.var(p.clone())).collect();
        let xc = tape.constant(x.clone());
        // Per-node gates from the raw features.
        let s_lin = tape.matmul(xc, ids[2]);
        let s_gate = tape.sigmoid(s_lin);
        let neg_s = tape.scalar_mul(s_gate, -1.0);
        let ones = Rc::new(DenseMatrix::filled(x.rows(), 1, 1.0));
        let s_comp = tape.add_const(neg_s, ones);
        let e_lin = tape.matmul(xc, ids[3]);
        let e_gate = tape.sigmoid(e_lin);

        let h1 = Self::gated_layer(tape, xc, ids[0], an, af, s_gate, s_comp, e_gate);
        let h1 = tape.relu(h1);
        let mut h1d = h1;
        if let (true, Some(epoch)) = (self.config.train.dropout > 0.0, mode.train_epoch()) {
            h1d = tape.dropout(
                h1,
                self.config.train.dropout,
                self.config.train.seed.wrapping_add(60_000 + epoch as u64),
            );
        }
        let logits = Self::gated_layer(tape, h1d, ids[1], an, af, s_gate, s_comp, e_gate);

        let reg = match ssl {
            Some((sa, sb, targets)) if mode.is_train() && self.config.ssl_weight > 0.0 => {
                let ha = tape.spmm(Rc::clone(sa), h1);
                let hb = tape.spmm(Rc::clone(sb), h1);
                let d = tape.sub(ha, hb);
                let sq = tape.hadamard(d, d);
                let dist = tape.row_sum(sq);
                let err = tape.sub_const(dist, targets);
                let err_sq = tape.hadamard(err, err);
                let total = tape.sum_all(err_sq);
                Some(tape.scalar_mul(total, self.config.ssl_weight / targets.rows() as f64))
            }
            _ => None,
        };
        (logits, ids, reg)
    }
}

impl NodeClassifier for SimPGcn {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let _span = bbgnn_obs::span!("defense/simpgcn/fit", nodes = g.num_nodes());
        let an = Rc::new(g.normalized_adjacency());
        let af = Rc::new(self.knn_graph(g));
        self.trained_graphs = Some((Rc::clone(&an), Rc::clone(&af)));
        let ssl = self.ssl_pairs(g);
        let mut params = self.init_params(g.feature_dim(), g.num_classes);
        let x = g.features.clone();
        let cfg = self.config.train.clone();
        let salt = bbgnn_store::enabled().then(|| {
            bbgnn_store::Key::new("model/simpgcn")
                .field("hidden", self.config.hidden)
                .field("knn", self.config.knn)
                .field("ssl_pairs", self.config.ssl_pairs)
                .field("ssl_weight", self.config.ssl_weight)
        });
        let this = &*self;
        let report = train_with_regularizer_keyed(&mut params, g, &cfg, salt, |tape, p, mode| {
            this.forward(tape, p, &an, &af, &x, Some(&ssl), mode)
        });
        self.params = params;
        report
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        assert!(!self.params.is_empty(), "model is not trained");
        // lint: allow(panic) reason=documented precondition — callers must fit() first
        let (an, af) = self.trained_graphs.as_ref().expect("model is not trained");
        let mut tape = Tape::new();
        let (out, _, _) = self.forward(
            &mut tape,
            &self.params,
            an,
            af,
            &g.features,
            None,
            Mode::Eval,
        );
        tape.value(out).row_argmax()
    }
}

impl Defender for SimPGcn {
    fn name(&self) -> String {
        "SimPGCN".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn learns_clean_graph() {
        let g = DatasetSpec::CoraLike.generate(0.06, 151);
        let mut m = SimPGcn::new(SimPGcnConfig {
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        let report = m.fit(&g);
        assert!(report.final_loss.is_finite());
        let acc = m.test_accuracy(&g);
        // Well above chance (1/7): SimPGCN's self-supervised term makes it
        // the most seed-sensitive defender at test scale, so the margin is
        // intentionally loose.
        assert!(acc > 0.5, "SimPGCN clean accuracy {acc} too low");
    }

    #[test]
    fn knn_graph_is_empty_for_identity_features() {
        let g = DatasetSpec::PolblogsLike.generate(0.08, 152);
        let m = SimPGcn::new(SimPGcnConfig::default());
        let af = m.knn_graph(&g);
        // Only self-loops from normalization.
        assert_eq!(af.nnz(), g.num_nodes());
    }

    #[test]
    fn ssl_targets_are_dissimilarities() {
        let g = DatasetSpec::CoraLike.generate(0.05, 153);
        let m = SimPGcn::new(SimPGcnConfig {
            ssl_pairs: 32,
            ..Default::default()
        });
        let (_, _, targets) = m.ssl_pairs(&g);
        for &t in targets.as_slice() {
            assert!(
                (-1e-9..=2.0 + 1e-9).contains(&t),
                "target {t} outside [0, 2]"
            );
        }
    }

    #[test]
    fn survives_poisoned_graph() {
        use bbgnn_attack::peega::{Peega, PeegaConfig};
        use bbgnn_attack::Attacker;
        let g = DatasetSpec::CoraLike.generate(0.06, 154);
        let mut atk = Peega::new(PeegaConfig {
            rate: 0.15,
            ..Default::default()
        });
        let poisoned = atk.attack(&g).poisoned;
        let mut m = SimPGcn::new(SimPGcnConfig {
            train: TrainConfig::fast_test(),
            ..Default::default()
        });
        m.fit(&poisoned);
        let acc = m.test_accuracy(&poisoned);
        // Heavy attack + deliberately noisy features (DESIGN.md §3):
        // comfortably above chance (1/7) is the contract here.
        assert!(acc > 0.3, "SimPGCN accuracy {acc} fell to chance level");
    }
}
