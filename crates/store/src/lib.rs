//! Content-addressed on-disk artifact cache (DESIGN.md §10).
//!
//! Every expensive intermediate of the experiment pipeline — trained
//! surrogates, normalized-adjacency propagations, SVD/eigen factor
//! bundles — is a pure function of its inputs, because the whole
//! workspace is bitwise-deterministic (DESIGN.md §7). That makes the
//! results cacheable by *content*: the cache key fingerprints the exact
//! bits of the input graph plus every config knob and the seed, so a
//! perturbed graph can never alias a clean one, and a cache hit is
//! bitwise-indistinguishable from recomputation.
//!
//! The store is strictly an accelerator: it is off unless initialized
//! (`--store <dir>` / `BBGNN_STORE=<dir>`), a lookup failure of any kind
//! degrades to a miss, and a write failure degrades to a warning. No
//! experiment result may ever depend on whether the store is present.
//!
//! Layering: this crate sits at the bottom of the workspace graph
//! (depends only on `linalg` + `obs`), so every layer above — gnn,
//! attack, defense, bench — can persist artifacts without cycles.

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod artifact;
pub mod format;

pub use artifact::{EigenFactors, ModelReport, SvdFactors, TrainedModel};
pub use format::{Artifact, FORMAT_VERSION};

use bbgnn_linalg::content_hash::{fnv1a64, Fnv1a};
use bbgnn_obs as obs;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// File extension of every artifact ("bbgnn artifact").
pub const ARTIFACT_EXT: &str = "bba";

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// A deterministic cache key: a kind plus a pipe-joined field list.
///
/// The full text (e.g. `model/gcn|hidden=16|graph=0x3f…|lr=0.01|seed=0`)
/// is embedded in the artifact header and compared on every read, so the
/// 64-bit filename hash only routes — it can never serve a wrong value.
/// Field order is fixed by the call site, mirroring the bench-config
/// fingerprint idiom (`ExpConfig::fingerprint`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Key {
    kind: &'static str,
    text: String,
}

impl Key {
    /// Starts a key of the given kind (e.g. `"model/gcn"`). The current
    /// [`FORMAT_VERSION`] is folded in so a format bump invalidates every
    /// existing artifact by key, not just by header check.
    pub fn new(kind: &'static str) -> Self {
        let mut text = String::with_capacity(64);
        text.push_str(kind);
        let _ = write!(text, "|v{FORMAT_VERSION}");
        Key { kind, text }
    }

    /// Appends a `name=value` field.
    pub fn field(mut self, name: &str, value: impl std::fmt::Display) -> Self {
        let _ = write!(self.text, "|{name}={value}");
        self
    }

    /// Appends a content-hash field in fixed-width hex (for graph /
    /// matrix fingerprints from [`bbgnn_linalg::content_hash`]).
    pub fn hash_field(mut self, name: &str, hash: u64) -> Self {
        let _ = write!(self.text, "|{name}={hash:#018x}");
        self
    }

    /// The key's kind.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The full key text (embedded verbatim in the artifact header).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The artifact filename this key routes to:
    /// `<kind with '/'→'-'>-<16-hex fnv1a of text>.bba`.
    pub fn filename(&self) -> String {
        let kind: String = self
            .kind
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!(
            "{kind}-{:016x}.{ARTIFACT_EXT}",
            fnv1a64(self.text.as_bytes())
        )
    }

    /// Convenience: folds an arbitrary string through FNV-1a into a
    /// [`Key::hash_field`] (for config blobs too long to inline).
    pub fn hashed_str_field(self, name: &str, value: &str) -> Self {
        let mut h = Fnv1a::new();
        h.bytes(value.as_bytes());
        self.hash_field(name, h.finish())
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Unique-per-process temp-file counter (concurrent writers each get
/// their own tempfile; the final `rename` is atomic).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An on-disk artifact store rooted at one directory (flat layout: one
/// `.bba` file per artifact).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create store root {}: {e}", root.display()))?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path an artifact with this key lives at.
    pub fn path_for(&self, key: &Key) -> PathBuf {
        self.root.join(key.filename())
    }

    /// Looks up an artifact. Any failure — absent file, stale format
    /// version, checksum mismatch, key collision, decode error — returns
    /// `None`; corruption additionally warns on stderr. Emits
    /// `store/hit` / `store/miss` counters and times the read + decode
    /// under the `store/load` kernel timer.
    pub fn get<A: Artifact>(&self, key: &Key) -> Option<A> {
        let _t = obs::kernel_timer("store/load");
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                obs::counter("store/miss", 1);
                return None;
            }
        };
        match decode_framed::<A>(&bytes, key) {
            Ok(Some(a)) => {
                obs::counter("store/hit", 1);
                note_artifact(&key.filename());
                Some(a)
            }
            Ok(None) => {
                // Stale version or key-text collision: expected, silent.
                obs::counter("store/miss", 1);
                None
            }
            Err(e) => {
                eprintln!(
                    "bbgnn-store: ignoring corrupt artifact {}: {e}",
                    path.display()
                );
                obs::counter("store/miss", 1);
                None
            }
        }
    }

    /// Writes an artifact: encode, frame, write to a process-unique
    /// tempfile, atomically rename into place. Emits `store/write`.
    pub fn put<A: Artifact>(&self, key: &Key, value: &A) -> Result<(), String> {
        let mut w = format::Writer::new();
        value.encode(&mut w);
        let payload = w.into_bytes();
        let mut img = format::frame(A::TAG, key.text(), &payload);
        // Deterministic fault sites (DESIGN.md §11): a corrupted image must
        // degrade to a miss on `get`, a short write models a crash/full
        // disk mid-put. Both still go through the atomic-rename path.
        if let Some(shot) = bbgnn_supervise::fault_at("fault/store_corrupt") {
            let idx = shot.pick(img.len());
            img[idx] ^= 0xFF;
        }
        if let Some(shot) = bbgnn_supervise::fault_at("fault/store_short_write") {
            img.truncate(shot.pick(img.len().max(1)));
        }
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let dst = self.path_for(key);
        fs::write(&tmp, &img).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &dst).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            format!("rename into {}: {e}", dst.display())
        })?;
        obs::counter("store/write", 1);
        note_artifact(&key.filename());
        Ok(())
    }
}

/// Deframes + decodes one artifact image against an expected key.
/// `Ok(None)` = well-formed but not ours (stale version or key-text
/// mismatch after a filename-hash collision); `Err` = corrupt.
fn decode_framed<A: Artifact>(bytes: &[u8], key: &Key) -> Result<Option<A>, String> {
    let framed = match format::deframe(bytes) {
        Ok(f) => f,
        // deframe reports version mismatch with this fixed prefix; it is
        // the one well-formed "not ours" envelope failure.
        Err(e) if e.starts_with("format version") => return Ok(None),
        Err(e) => return Err(e),
    };
    if framed.key_text != key.text() {
        return Ok(None);
    }
    if framed.tag != A::TAG {
        return Err(format!(
            "kind tag {} does not match expected {} for {}",
            framed.tag,
            A::TAG,
            A::KIND
        ));
    }
    let mut r = format::Reader::new(framed.payload);
    let value = A::decode(&mut r)?;
    r.finish()?;
    Ok(Some(value))
}

// ---------------------------------------------------------------------------
// Global store (mirrors the obs global-sink pattern)
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<Store>>> = RwLock::new(None);

/// Whether a global store is installed (one relaxed load — the fast
/// gate every cache-aware call site checks first).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a process-global store rooted at `path`.
pub fn init_to_path(path: &str) -> Result<(), String> {
    let store = Store::open(path)?;
    if let Ok(mut g) = GLOBAL.write() {
        *g = Some(Arc::new(store));
        ENABLED.store(true, Ordering::Relaxed);
    }
    Ok(())
}

/// Installs the global store from `BBGNN_STORE` if set; returns whether
/// a store is now active. An unusable path warns and leaves the store
/// off — caching must never fail a run.
pub fn init_from_env() -> bool {
    if let Ok(path) = std::env::var("BBGNN_STORE") {
        if !path.is_empty() {
            if let Err(e) = init_to_path(&path) {
                eprintln!("bbgnn-store: BBGNN_STORE ignored: {e}");
            }
        }
    }
    enabled()
}

/// The installed global store, if any.
pub fn global() -> Option<Arc<Store>> {
    if !enabled() {
        return None;
    }
    GLOBAL.read().ok().and_then(|g| g.clone())
}

/// Uninstalls the global store (tests; idempotent).
pub fn shutdown() {
    ENABLED.store(false, Ordering::Relaxed);
    if let Ok(mut g) = GLOBAL.write() {
        *g = None;
    }
}

/// Looks up `key` in the global store; `None` when no store is active.
pub fn lookup<A: Artifact>(key: &Key) -> Option<A> {
    global()?.get(key)
}

/// Writes to the global store if active; failures warn and are dropped
/// (the cache is an accelerator, never a correctness dependency).
pub fn publish<A: Artifact>(key: &Key, value: &A) {
    if let Some(store) = global() {
        if let Err(e) = store.put(key, value) {
            eprintln!("bbgnn-store: dropping artifact {}: {e}", key.text());
        }
    }
}

// ---------------------------------------------------------------------------
// Artifact recording (checkpoint liveness for `gc`)
// ---------------------------------------------------------------------------

thread_local! {
    static RECORDING: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
}

/// Starts recording artifact filenames touched (hit or written) by this
/// thread, until [`take_recording`]. `FaultRunner::cell` wraps each cell
/// body with this so checkpoints can pin their artifacts against `gc`.
pub fn start_recording() {
    RECORDING.with(|r| *r.borrow_mut() = Some(Vec::new()));
}

/// Stops recording and returns the deduplicated filenames, in
/// first-touch order.
pub fn take_recording() -> Vec<String> {
    RECORDING.with(|r| r.borrow_mut().take().unwrap_or_default())
}

fn note_artifact(filename: &str) {
    RECORDING.with(|r| {
        if let Some(v) = r.borrow_mut().as_mut() {
            if !v.iter().any(|f| f == filename) {
                v.push(filename.to_string());
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Maintenance (the `bbgnn-store` CLI is a thin shell over these)
// ---------------------------------------------------------------------------

/// One artifact as listed by [`ls`].
#[derive(Debug)]
pub struct LsEntry {
    /// Artifact filename (relative to the store root).
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Key text from the header, or the envelope error for bad files.
    pub status: Result<String, String>,
}

/// Sorted `.bba` files under `root` (deterministic listing order).
fn artifact_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(root).map_err(|e| format!("read_dir {}: {e}", root.display()))?;
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", root.display()))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some(ARTIFACT_EXT) {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Lists every artifact under `root` with its recorded key text.
pub fn ls(root: &Path) -> Result<Vec<LsEntry>, String> {
    let mut out = Vec::new();
    for path in artifact_files(root)? {
        let file = path
            .file_name()
            .and_then(|f| f.to_str())
            .unwrap_or_default()
            .to_string();
        let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let status = match fs::read(&path) {
            Ok(img) => format::deframe(&img).map(|f| f.key_text),
            Err(e) => Err(format!("read: {e}")),
        };
        out.push(LsEntry {
            file,
            bytes,
            status,
        });
    }
    Ok(out)
}

/// Outcome of a [`verify`] pass.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Artifacts whose envelope (magic, version, checksum, lengths) is valid.
    pub ok: usize,
    /// Stale artifacts (older/newer format version; read back as misses).
    pub stale: Vec<String>,
    /// Corrupt artifacts with the failure reason.
    pub corrupt: Vec<(String, String)>,
}

/// Verifies the envelope of every artifact under `root`.
pub fn verify(root: &Path) -> Result<VerifyReport, String> {
    let mut report = VerifyReport::default();
    for entry in ls(root)? {
        match entry.status {
            Ok(_) => report.ok += 1,
            Err(e) if e.starts_with("format version") => report.stale.push(entry.file),
            Err(e) => report.corrupt.push((entry.file, e)),
        }
    }
    Ok(report)
}

/// Outcome of a [`gc`] pass.
#[derive(Debug, Default)]
pub struct GcReport {
    /// Artifacts kept because a live checkpoint references them.
    pub live: Vec<String>,
    /// Artifacts deleted (or, under `dry_run`, that would be).
    pub removed: Vec<String>,
}

/// Recursively collects the contents of every `.json` file under `dir`
/// (checkpoints and result JSON) into `sink` for liveness matching.
fn collect_json_text(dir: &Path, sink: &mut String) -> Result<(), String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_json_text(&path, sink)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("json") {
            if let Ok(text) = fs::read_to_string(&path) {
                sink.push_str(&text);
                sink.push('\n');
            }
        }
    }
    Ok(())
}

/// Deletes artifacts not referenced by any checkpoint/result JSON under
/// the `live_from` directories. Liveness is a conservative substring
/// match on the artifact filename — over-approximating keeps `gc` safe
/// without a dependency on the checkpoint schema. Stray tempfiles from
/// crashed writers are always swept. Requires at least one `live_from`
/// root so `gc` can never run blind.
pub fn gc(root: &Path, live_from: &[PathBuf], dry_run: bool) -> Result<GcReport, String> {
    if live_from.is_empty() {
        return Err("gc requires at least one --live-from directory".to_string());
    }
    let mut live_text = String::new();
    for dir in live_from {
        collect_json_text(dir, &mut live_text)?;
    }
    let mut report = GcReport::default();
    for path in artifact_files(root)? {
        let file = path
            .file_name()
            .and_then(|f| f.to_str())
            .unwrap_or_default()
            .to_string();
        if live_text.contains(&file) {
            report.live.push(file);
        } else {
            if !dry_run {
                fs::remove_file(&path).map_err(|e| format!("remove {}: {e}", path.display()))?;
            }
            report.removed.push(file);
        }
    }
    if !dry_run {
        if let Ok(rd) = fs::read_dir(root) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                if name.to_string_lossy().starts_with(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_linalg::DenseMatrix;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bbgnn-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_text_and_filename_are_deterministic() {
        let k = Key::new("model/gcn")
            .field("hidden", 16)
            .hash_field("graph", 0xdead_beef)
            .field("seed", 0);
        assert_eq!(
            k.text(),
            format!("model/gcn|v{FORMAT_VERSION}|hidden=16|graph=0x00000000deadbeef|seed=0")
        );
        let k2 = Key::new("model/gcn")
            .field("hidden", 16)
            .hash_field("graph", 0xdead_beef)
            .field("seed", 0);
        assert_eq!(k.filename(), k2.filename());
        assert!(k.filename().starts_with("model-gcn-"));
        assert!(k.filename().ends_with(".bba"));
        let other = Key::new("model/gcn")
            .field("hidden", 16)
            .hash_field("graph", 0xdead_beef)
            .field("seed", 1);
        assert_ne!(k.filename(), other.filename(), "seed must change the key");
    }

    #[test]
    fn put_get_roundtrip_and_miss_paths() {
        let root = tmp_root("roundtrip");
        let store = Store::open(&root).expect("open");
        let key = Key::new("dense/test").field("case", "roundtrip");
        assert!(
            store.get::<DenseMatrix>(&key).is_none(),
            "cold store misses"
        );

        let m = DenseMatrix::from_vec(2, 2, vec![1.0, -0.0, 3.5, f64::MIN_POSITIVE]);
        store.put(&key, &m).expect("put");
        let back: DenseMatrix = store.get(&key).expect("hit");
        assert_eq!(back.content_hash(), m.content_hash(), "bitwise roundtrip");

        let other = Key::new("dense/test").field("case", "other");
        assert!(store.get::<DenseMatrix>(&other).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_artifact_is_a_miss_and_verify_reports_it() {
        let root = tmp_root("corrupt");
        let store = Store::open(&root).expect("open");
        let key = Key::new("dense/test").field("case", "corrupt");
        store
            .put(&key, &DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]))
            .expect("put");

        let path = store.path_for(&key);
        let mut img = fs::read(&path).expect("read");
        let mid = img.len() / 2;
        img[mid] ^= 0x01;
        fs::write(&path, &img).expect("rewrite");

        assert!(
            store.get::<DenseMatrix>(&key).is_none(),
            "checksum mismatch must read as a miss"
        );
        let report = verify(&root).expect("verify");
        assert_eq!(report.ok, 0);
        assert_eq!(report.corrupt.len(), 1);
        assert!(report.corrupt[0].1.contains("checksum"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn format_version_bump_invalidates() {
        let root = tmp_root("version");
        let store = Store::open(&root).expect("open");
        let key = Key::new("dense/test").field("case", "version");
        store
            .put(&key, &DenseMatrix::from_vec(1, 1, vec![9.0]))
            .expect("put");

        // Simulate an artifact written by a future format: bump the
        // version field and re-checksum so only the version differs.
        let path = store.path_for(&key);
        let mut img = fs::read(&path).expect("read");
        img[4] = img[4].wrapping_add(1);
        let body = img.len() - 8;
        let sum = format::fletcher64(&img[..body]).to_le_bytes();
        img[body..].copy_from_slice(&sum);
        fs::write(&path, &img).expect("rewrite");

        assert!(
            store.get::<DenseMatrix>(&key).is_none(),
            "future-version artifact must read as a (silent) miss"
        );
        let report = verify(&root).expect("verify");
        assert_eq!(report.stale.len(), 1);
        assert!(report.corrupt.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_collision_text_mismatch_is_a_miss() {
        let root = tmp_root("collision");
        let store = Store::open(&root).expect("open");
        let key = Key::new("dense/test").field("case", "collision");
        store
            .put(&key, &DenseMatrix::from_vec(1, 1, vec![1.0]))
            .expect("put");

        // Force a filename collision with a *different* key by copying
        // the artifact over the other key's slot.
        let imposter = Key::new("dense/test").field("case", "imposter");
        fs::copy(store.path_for(&key), store.path_for(&imposter)).expect("copy");
        assert!(
            store.get::<DenseMatrix>(&imposter).is_none(),
            "embedded key text must reject the aliased artifact"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_writers_leave_a_valid_artifact() {
        let root = tmp_root("concurrent");
        let store = Arc::new(Store::open(&root).expect("open"));
        let key = Key::new("dense/test").field("case", "concurrent");
        let m = DenseMatrix::from_vec(8, 8, (0..64).map(|i| i as f64 * 0.5).collect());

        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let key = key.clone();
                let m = m.clone();
                std::thread::spawn(move || store.put(&key, &m).expect("put"))
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }

        let back: DenseMatrix = store.get(&key).expect("hit after racing writers");
        assert_eq!(back.content_hash(), m.content_hash());
        // No tempfile litter.
        let strays = fs::read_dir(&root)
            .expect("read_dir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(strays, 0, "every tempfile must be renamed away");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_protects_checkpoint_referenced_artifacts() {
        let root = tmp_root("gc");
        let store = Store::open(&root).expect("open");
        let live_key = Key::new("model/gcn").field("case", "live");
        let dead_key = Key::new("model/gcn").field("case", "dead");
        let m = DenseMatrix::from_vec(1, 1, vec![1.0]);
        store.put(&live_key, &m).expect("put");
        store.put(&dead_key, &m).expect("put");

        // A checkpoint that references the live artifact by filename.
        let ckpt_dir = root.join("results");
        fs::create_dir_all(&ckpt_dir).expect("mkdir");
        fs::write(
            ckpt_dir.join("tables_main.checkpoint.json"),
            format!(
                "{{\"cells\":{{\"cora/pgd/gcn\":{{\"artifacts\":[\"{}\"]}}}}}}",
                live_key.filename()
            ),
        )
        .expect("write checkpoint");

        assert!(
            gc(&root, &[], false).is_err(),
            "gc without live roots must refuse to run"
        );

        let dry = gc(&root, std::slice::from_ref(&ckpt_dir), true).expect("dry run");
        assert_eq!(dry.live, vec![live_key.filename()]);
        assert_eq!(dry.removed, vec![dead_key.filename()]);
        assert!(
            store.path_for(&dead_key).exists(),
            "dry run must not delete"
        );

        let wet = gc(&root, &[ckpt_dir], false).expect("gc");
        assert_eq!(wet.removed, vec![dead_key.filename()]);
        assert!(store.path_for(&live_key).exists(), "live artifact survives");
        assert!(!store.path_for(&dead_key).exists(), "dead artifact removed");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn recording_captures_hits_and_writes_once() {
        let root = tmp_root("recording");
        let store = Store::open(&root).expect("open");
        let key = Key::new("dense/test").field("case", "recording");
        let m = DenseMatrix::from_vec(1, 1, vec![2.0]);

        start_recording();
        store.put(&key, &m).expect("put");
        let _: Option<DenseMatrix> = store.get(&key);
        let _: Option<DenseMatrix> = store.get(&key);
        let recorded = take_recording();
        assert_eq!(recorded, vec![key.filename()], "deduplicated");
        assert!(take_recording().is_empty(), "take must stop the recording");
        let _ = fs::remove_dir_all(&root);
    }
}
