//! Singular value decomposition.
//!
//! Two algorithms are provided:
//!
//! * [`jacobi_svd`] — exact one-sided Jacobi SVD. Cubic cost but very
//!   robust; used on small/medium matrices and as the inner solver of the
//!   randomized method.
//! * [`randomized_svd`] — Halko-Martinsson-Tropp randomized truncated SVD
//!   with power iterations. Used by the GCN-SVD defense and Pro-GNN's
//!   nuclear-norm proximal step, where only a rank-`k` approximation is
//!   needed.
//!
//! Every solver has a fallible `try_*` form returning
//! [`BbgnnResult`](bbgnn_errors::BbgnnResult): non-finite input is rejected
//! as [`NumericalDivergence`](bbgnn_errors::BbgnnError::NumericalDivergence)
//! and a sweep budget that runs dry surfaces as
//! [`ConvergenceFailure`](bbgnn_errors::BbgnnError::ConvergenceFailure)
//! instead of a silently truncated answer. [`try_randomized_svd`] degrades
//! gracefully: when the sketched problem fails its residual check, it
//! retries with the exact Jacobi solver before giving up. The original
//! panicking names are kept as thin wrappers for callers that cannot
//! recover anyway.

use crate::qr::thin_qr;
use crate::DenseMatrix;
use bbgnn_errors::{first_non_finite, BbgnnError, BbgnnResult};

/// A (possibly truncated) singular value decomposition `A ≈ U Σ V^T`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × k` (columns).
    pub u: DenseMatrix,
    /// Singular values, descending, length `k`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × k` (columns).
    pub v: DenseMatrix,
}

impl Svd {
    /// Reconstructs `U Σ V^T`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let us = self.u.scale_cols(&self.sigma);
        us.matmul_nt(&self.v)
    }

    /// Truncates to the top `k` singular triplets.
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.sigma.len());
        Svd {
            u: take_cols(&self.u, k),
            sigma: self.sigma[..k].to_vec(),
            v: take_cols(&self.v, k),
        }
    }

    /// True iff every factor entry and singular value is finite.
    pub fn is_finite(&self) -> bool {
        self.sigma.iter().all(|s| s.is_finite())
            && first_non_finite(self.u.as_slice()).is_none()
            && first_non_finite(self.v.as_slice()).is_none()
    }
}

fn take_cols(m: &DenseMatrix, k: usize) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(m.rows(), k);
    for i in 0..m.rows() {
        out.row_mut(i).copy_from_slice(&m.row(i)[..k]);
    }
    out
}

/// Rejects matrices containing NaN/±inf entries before they poison an
/// iterative solver.
pub(crate) fn check_finite_input(a: &DenseMatrix, method: &str) -> BbgnnResult<()> {
    if let Some((idx, value)) = first_non_finite(a.as_slice()) {
        let (r, c) = (idx / a.cols().max(1), idx % a.cols().max(1));
        return Err(BbgnnError::NumericalDivergence {
            what: format!("{method}: input entry ({r}, {c})"),
            value,
        });
    }
    Ok(())
}

/// Exact one-sided Jacobi SVD of `a` (m×n, any shape), with runtime
/// convergence checking.
///
/// Rotates pairs of columns of a working copy of `A` until all column pairs
/// are orthogonal; column norms then give `Σ`, normalized columns give `U`,
/// and accumulated rotations give `V`. Converges quadratically. Errors with
/// [`BbgnnError::ConvergenceFailure`] if any column pair is still
/// non-orthogonal after the sweep budget, and
/// [`BbgnnError::NumericalDivergence`] on non-finite input.
pub fn try_jacobi_svd(a: &DenseMatrix) -> BbgnnResult<Svd> {
    check_finite_input(a, "jacobi_svd")?;
    let (m, n) = a.shape();
    if m < n {
        // Work on the transpose and swap U/V.
        let svd = try_jacobi_svd(&a.transpose())?;
        return Ok(Svd {
            u: svd.v,
            sigma: svd.sigma,
            v: svd.u,
        });
    }
    // Column-major working copy: row j of `wt` is column j of the work matrix.
    let mut wt = a.transpose(); // n × m
    let mut vt = DenseMatrix::identity(n); // row j = column j of V
    let eps = 1e-12;
    let max_sweeps = 60;
    // Givens rotations preserve the Frobenius norm, so this is a loop
    // invariant. Columns whose norm² falls below `floor` are numerically
    // zero (singular value ≤ eps·‖A‖_F); their dot products are rounding
    // noise and must not feed the *relative* orthogonality test below,
    // which would otherwise divide by ~0 and report astronomical
    // residuals on rank-deficient input (e.g. nuclear-norm-shrunk
    // matrices from Pro-GNN).
    let fro2: f64 = wt.as_slice().iter().map(|v| v * v).sum();
    let floor = eps * eps * fro2;
    let mut converged = n < 2;
    let mut last_off = 0.0_f64;
    for _sweep in 0..max_sweeps {
        // Cooperative stop site (DESIGN.md §11): a sweep boundary is safe
        // because no sweep has been partially applied here.
        bbgnn_supervise::check("jacobi_svd/sweep")?;
        // Relative off-diagonal magnitude of the worst column pair; a clean
        // sweep (no rotation above the threshold) means convergence.
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (app, aqq, apq) = {
                    let rp = wt.row(p);
                    let rq = wt.row(q);
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for k in 0..m {
                        app += rp[k] * rp[k];
                        aqq += rq[k] * rq[k];
                        apq += rp[k] * rq[k];
                    }
                    (app, aqq, apq)
                };
                if apq == 0.0 || app <= floor || aqq <= floor {
                    continue;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(1e-300));
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_rows(&mut wt, p, q, c, s);
                rotate_rows(&mut vt, p, q, c, s);
            }
        }
        last_off = off;
        if off <= eps {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(BbgnnError::ConvergenceFailure {
            method: "jacobi_svd".to_string(),
            iters: max_sweeps,
            residual: last_off,
        });
    }
    // Extract singular values and U.
    let mut triplets: Vec<(f64, usize)> = (0..n)
        .map(|j| (wt.row(j).iter().map(|v| v * v).sum::<f64>().sqrt(), j))
        .collect();
    triplets.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut u = DenseMatrix::zeros(m, n);
    let mut v = DenseMatrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    // One scratch buffer reused for every normalized column (see
    // `DenseMatrix::set_col` / `col_into`: column traffic goes through
    // whole-column helpers instead of per-element `set` calls).
    let mut ucol = vec![0.0; m];
    for (out_col, &(s, j)) in triplets.iter().enumerate() {
        sigma.push(s);
        if s > 1e-300 {
            for (o, &c) in ucol.iter_mut().zip(wt.row(j)) {
                *o = c / s;
            }
            u.set_col(out_col, &ucol);
        }
        v.set_col(out_col, vt.row(j));
    }
    Ok(Svd { u, sigma, v })
}

/// Infallible façade over [`try_jacobi_svd`].
///
/// # Panics
/// Panics on non-finite input or failed convergence; use the `try_` form
/// where recovery is possible.
pub fn jacobi_svd(a: &DenseMatrix) -> Svd {
    // lint: allow(panic) reason=documented infallible facade — try_jacobi_svd is the recoverable path
    try_jacobi_svd(a).unwrap_or_else(|e| panic!("jacobi_svd: {e}"))
}

/// Applies the Givens rotation `[c -s; s c]` to rows `p`, `q` of `m`
/// (interpreted as columns of the untransposed matrix).
fn rotate_rows(m: &mut DenseMatrix, p: usize, q: usize, c: f64, s: f64) {
    let cols = m.cols();
    let data = m.as_mut_slice();
    let (lo, hi) = if p < q { (p, q) } else { (q, p) };
    let (left, right) = data.split_at_mut(hi * cols);
    let row_lo = &mut left[lo * cols..(lo + 1) * cols];
    let row_hi = &mut right[..cols];
    // Note: rotation is defined on (p, q) order; swap sign if reordered.
    let (c, s) = if p < q { (c, s) } else { (c, -s) };
    for k in 0..cols {
        let a = row_lo[k];
        let b = row_hi[k];
        row_lo[k] = c * a - s * b;
        row_hi[k] = s * a + c * b;
    }
}

/// Randomized truncated SVD (rank `k`, `oversample` extra columns,
/// `power_iters` subspace iterations), deterministic given `seed`, with
/// graceful degradation.
///
/// Accuracy improves sharply with `power_iters` when the spectrum decays
/// slowly; 2 iterations suffice for the adjacency-like matrices used here.
/// If the sketched inner problem fails its convergence/residual check, the
/// call falls back to an exact Jacobi SVD of `a` truncated to rank `k` —
/// slower, but never silently wrong — and only errors when the exact path
/// fails too.
pub fn try_randomized_svd(
    a: &DenseMatrix,
    k: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> BbgnnResult<Svd> {
    check_finite_input(a, "randomized_svd")?;
    match randomized_sketch_svd(a, k, oversample, power_iters, seed) {
        Ok(svd) if svd.is_finite() => Ok(svd),
        // A supervision stop is not a numerical failure: the run is winding
        // down, so never escalate to the (more expensive) exact solver.
        Err(e) if e.is_supervision_stop() => Err(e),
        // Degraded path: the sketch failed (rotation budget or non-finite
        // factors); the exact solver is the last line of defense.
        _ => try_jacobi_svd(a)
            .map(|svd| svd.truncate(k))
            .map_err(|e| e.context(format!("randomized_svd(k={k}): exact fallback also failed"))),
    }
}

/// The sketch-project-solve core of [`try_randomized_svd`].
fn randomized_sketch_svd(
    a: &DenseMatrix,
    k: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> BbgnnResult<Svd> {
    let (m, n) = a.shape();
    let l = (k + oversample).min(n).min(m);
    let omega = DenseMatrix::gaussian(n, l, 1.0, seed);
    let mut y = a.matmul(&omega); // m × l
    let mut q = thin_qr(&y).q;
    for _ in 0..power_iters {
        // Cooperative stop site (DESIGN.md §11): power-iteration boundary.
        bbgnn_supervise::check("randomized_svd/power_iter")?;
        let z = a.matmul_tn(&q); // n × l  (A^T Q)
        let qz = thin_qr(&z).q;
        y = a.matmul(&qz);
        q = thin_qr(&y).q;
    }
    let b = q.matmul_tn(a); // Q^T A, l × n
    let small = try_jacobi_svd(&b)?;
    let u = q.matmul(&small.u);
    let svd = Svd {
        u,
        sigma: small.sigma,
        v: small.v,
    };
    Ok(svd.truncate(k))
}

/// Infallible façade over [`try_randomized_svd`].
///
/// # Panics
/// Panics when both the sketched and the exact fallback path fail.
pub fn randomized_svd(
    a: &DenseMatrix,
    k: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> Svd {
    try_randomized_svd(a, k, oversample, power_iters, seed)
        // lint: allow(panic) reason=documented infallible facade — try_randomized_svd is the recoverable path
        .unwrap_or_else(|e| panic!("randomized_svd: {e}"))
}

/// Fallible rank-`k` approximation of `a` via randomized SVD — the
/// operation used by the GCN-SVD defense.
pub fn try_low_rank_approximation(
    a: &DenseMatrix,
    k: usize,
    seed: u64,
) -> BbgnnResult<DenseMatrix> {
    Ok(try_randomized_svd(a, k, 8, 2, seed)?.reconstruct())
}

/// Infallible façade over [`try_low_rank_approximation`].
///
/// # Panics
/// Panics when both SVD paths fail.
pub fn low_rank_approximation(a: &DenseMatrix, k: usize, seed: u64) -> DenseMatrix {
    // lint: allow(panic) reason=documented infallible facade — try_low_rank_approximation is the recoverable path
    try_low_rank_approximation(a, k, seed).unwrap_or_else(|e| panic!("low_rank_approximation: {e}"))
}

/// Fallible singular value soft-thresholding `prox_{t||.||_*}(A)`: shrinks
/// every singular value by `t` and clamps at zero. Used by Pro-GNN's
/// nuclear-norm proximal operator. `rank_budget` bounds the number of
/// singular triplets computed (the remainder is assumed shrunk to zero).
pub fn try_singular_value_shrink(
    a: &DenseMatrix,
    t: f64,
    rank_budget: usize,
    seed: u64,
) -> BbgnnResult<DenseMatrix> {
    let min_dim = a.rows().min(a.cols());
    // Near-full budgets: the randomized sketch would be as large as the
    // matrix itself; exact Jacobi is cheaper and exact.
    let svd = if rank_budget * 4 >= min_dim * 3 {
        try_jacobi_svd(a)?.truncate(rank_budget)
    } else {
        try_randomized_svd(a, rank_budget, 8, 2, seed)?
    };
    let shrunk: Vec<f64> = svd.sigma.iter().map(|&s| (s - t).max(0.0)).collect();
    let us = svd.u.scale_cols(&shrunk);
    Ok(us.matmul_nt(&svd.v))
}

/// Infallible façade over [`try_singular_value_shrink`].
///
/// # Panics
/// Panics when the underlying SVD fails.
pub fn singular_value_shrink(
    a: &DenseMatrix,
    t: f64,
    rank_budget: usize,
    seed: u64,
) -> DenseMatrix {
    try_singular_value_shrink(a, t, rank_budget, seed)
        // lint: allow(panic) reason=documented infallible facade — try_singular_value_shrink is the recoverable path
        .unwrap_or_else(|e| panic!("singular_value_shrink: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_svd_valid(a: &DenseMatrix, svd: &Svd, tol: f64) {
        assert!(
            svd.reconstruct().max_abs_diff(a) < tol,
            "reconstruction failed"
        );
        let k = svd.sigma.len();
        let gram_u = svd.u.matmul_tn(&svd.u);
        let gram_v = svd.v.matmul_tn(&svd.v);
        // Only the leading non-degenerate part must be orthonormal.
        assert!(
            gram_u.max_abs_diff(&DenseMatrix::identity(k)) < 1e-6,
            "U not orthonormal"
        );
        assert!(
            gram_v.max_abs_diff(&DenseMatrix::identity(k)) < 1e-6,
            "V not orthonormal"
        );
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
        }
    }

    #[test]
    fn jacobi_svd_square() {
        let a = DenseMatrix::uniform(12, 12, 1.0, 21);
        let svd = jacobi_svd(&a);
        assert_svd_valid(&a, &svd, 1e-8);
    }

    #[test]
    fn jacobi_svd_tall_and_wide() {
        let tall = DenseMatrix::uniform(15, 6, 1.0, 22);
        assert_svd_valid(&tall, &jacobi_svd(&tall), 1e-8);
        let wide = DenseMatrix::uniform(6, 15, 1.0, 23);
        assert_svd_valid(&wide, &jacobi_svd(&wide), 1e-8);
    }

    #[test]
    fn jacobi_svd_diagonal_matrix() {
        let mut a = DenseMatrix::zeros(4, 4);
        for (i, &s) in [4.0, 3.0, 2.0, 1.0].iter().enumerate() {
            a.set(i, i, s);
        }
        let svd = jacobi_svd(&a);
        for (i, &s) in [4.0, 3.0, 2.0, 1.0].iter().enumerate() {
            assert!((svd.sigma[i] - s).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_values_match_gram_eigenvalues() {
        let a = DenseMatrix::uniform(8, 5, 1.0, 24);
        let svd = jacobi_svd(&a);
        // Σ σ_i² = ||A||_F².
        let sum_sq: f64 = svd.sigma.iter().map(|s| s * s).sum();
        assert!((sum_sq - a.frobenius_norm().powi(2)).abs() < 1e-8);
    }

    #[test]
    fn randomized_svd_recovers_low_rank_matrix() {
        // Rank-3 matrix.
        let u = DenseMatrix::uniform(40, 3, 1.0, 31);
        let v = DenseMatrix::uniform(25, 3, 1.0, 32);
        let a = u.matmul_nt(&v);
        let svd = randomized_svd(&a, 3, 8, 2, 1);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn low_rank_approximation_reduces_error_with_rank() {
        let a = DenseMatrix::uniform(30, 30, 1.0, 33);
        let e2 = a.sub(&low_rank_approximation(&a, 2, 5)).frobenius_norm();
        let e10 = a.sub(&low_rank_approximation(&a, 10, 5)).frobenius_norm();
        let e29 = a.sub(&low_rank_approximation(&a, 29, 5)).frobenius_norm();
        assert!(e10 < e2);
        assert!(e29 < e10);
    }

    #[test]
    fn shrink_zeroes_small_singular_values() {
        let mut a = DenseMatrix::zeros(5, 5);
        a.set(0, 0, 10.0);
        a.set(1, 1, 0.5);
        let s = singular_value_shrink(&a, 1.0, 5, 3);
        assert!((s.get(0, 0) - 9.0).abs() < 1e-6);
        assert!(s.get(1, 1).abs() < 1e-6);
    }

    #[test]
    fn jacobi_svd_converges_on_rank_deficient_matrix() {
        // Regression: nuclear-norm shrinkage (Pro-GNN) hands back matrices
        // whose trailing singular values are exactly zero. The relative
        // orthogonality test must not divide by the vanishing norms of the
        // resulting numerically-zero columns.
        let u = DenseMatrix::uniform(20, 3, 1.0, 41);
        let v = DenseMatrix::uniform(20, 3, 1.0, 42);
        let a = u.matmul_nt(&v); // rank 3 of 20
        let svd = try_jacobi_svd(&a).expect("rank-deficient SVD must converge");
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-8);
        for &s in &svd.sigma[3..] {
            assert!(s < 1e-8, "trailing singular value {s} should be ~0");
        }
    }

    #[test]
    fn try_jacobi_svd_rejects_nan_input() {
        let mut a = DenseMatrix::uniform(4, 4, 1.0, 25);
        a.set(2, 1, f64::NAN);
        match try_jacobi_svd(&a) {
            Err(BbgnnError::NumericalDivergence { what, value }) => {
                assert!(what.contains("(2, 1)"), "unexpected location: {what}");
                assert!(value.is_nan());
            }
            other => panic!("expected NumericalDivergence, got {other:?}"),
        }
    }

    #[test]
    fn try_randomized_svd_rejects_inf_input() {
        let mut a = DenseMatrix::uniform(10, 10, 1.0, 26);
        a.set(0, 0, f64::INFINITY);
        assert!(try_randomized_svd(&a, 3, 4, 1, 1).is_err());
    }

    #[test]
    fn try_randomized_svd_matches_infallible_path() {
        let a = DenseMatrix::uniform(20, 12, 1.0, 27);
        let tried = try_randomized_svd(&a, 4, 8, 2, 9).unwrap();
        let plain = randomized_svd(&a, 4, 8, 2, 9);
        assert_eq!(
            tried.sigma, plain.sigma,
            "fallible and infallible paths must agree"
        );
    }

    #[test]
    fn try_randomized_svd_survives_near_degenerate_matrix() {
        // Numerically rank-1 with tiny noise: the sketch sees a brutally
        // ill-conditioned spectrum but must still return finite factors.
        let u = DenseMatrix::uniform(25, 1, 1.0, 28);
        let v = DenseMatrix::uniform(25, 1, 1.0, 29);
        let mut a = u.matmul_nt(&v);
        let noise = DenseMatrix::uniform(25, 25, 1e-13, 30);
        a = a.add(&noise);
        let svd = try_randomized_svd(&a, 5, 8, 2, 4).unwrap();
        assert!(svd.is_finite());
        assert!(svd.sigma[0] > 0.0);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-6);
    }
}
