//! Criterion micro-benchmarks for the Table VII attacker comparison.
//!
//! Each attacker poisons the same small Cora-like graph at rate 0.05.
//! The relative ordering (PEEGA fastest effective attacker, Metattack and
//! GF-Attack slowest) is the reproduction target.

use bbgnn::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_graph() -> Graph {
    DatasetSpec::CoraLike.generate(0.05, 7)
}

fn bench_attackers(c: &mut Criterion) {
    let g = bench_graph();
    let mut group = c.benchmark_group("attackers");
    group.sample_size(10);

    group.bench_function("peega", |b| {
        b.iter(|| {
            let mut atk = Peega::new(PeegaConfig {
                rate: 0.05,
                ..Default::default()
            });
            std::hint::black_box(atk.attack(&g))
        })
    });
    group.bench_function("pgd", |b| {
        b.iter(|| {
            let mut atk = PgdAttack::new(PgdConfig {
                rate: 0.05,
                ascent_steps: 30,
                ..Default::default()
            });
            std::hint::black_box(atk.attack(&g))
        })
    });
    group.bench_function("minmax", |b| {
        b.iter(|| {
            let mut atk = MinMaxAttack::new(MinMaxConfig {
                rate: 0.05,
                ascent_steps: 30,
                ..Default::default()
            });
            std::hint::black_box(atk.attack(&g))
        })
    });
    group.bench_function("metattack", |b| {
        b.iter(|| {
            let mut atk = Metattack::new(MetattackConfig {
                rate: 0.05,
                retrain_every: 5,
                ..Default::default()
            });
            std::hint::black_box(atk.attack(&g))
        })
    });
    group.bench_function("gf_attack", |b| {
        b.iter(|| {
            let mut atk = GfAttack::new(GfAttackConfig {
                rate: 0.05,
                ..Default::default()
            });
            std::hint::black_box(atk.attack(&g))
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut atk = RandomAttack::new(RandomAttackConfig {
                rate: 0.05,
                ..Default::default()
            });
            std::hint::black_box(atk.attack(&g))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_attackers);
criterion_main!(benches);
