//! GraphSAGE (Hamilton et al. 2017) with the mean aggregator.
//!
//! A further victim model beyond the paper's GCN/GAT: each layer combines
//! the node's own representation with the mean of its neighbors',
//!
//! ```text
//!   h'_v = relu(W_self h_v + W_neigh · mean_{u ∈ N(v)} h_u)
//! ```
//!
//! (final layer linear). Useful for transfer experiments — PEEGA's poison
//! graphs are generated against a linear-GCN surrogate, and GraphSAGE
//! checks that the attack transfers across aggregation schemes.

use crate::train::{train_node_classifier_keyed, Mode, TrainConfig, TrainReport};
use crate::NodeClassifier;
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_graph::Graph;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::rc::Rc;

/// Two-layer GraphSAGE with mean aggregation.
pub struct GraphSage {
    /// Hidden width.
    pub hidden: usize,
    /// Training configuration.
    pub config: TrainConfig,
    /// Parameter layout: `[W_self0, W_neigh0, W_self1, W_neigh1]`.
    params: Vec<DenseMatrix>,
}

impl GraphSage {
    /// Creates an untrained GraphSAGE model.
    pub fn new(hidden: usize, config: TrainConfig) -> Self {
        Self {
            hidden,
            config,
            params: Vec::new(),
        }
    }

    /// Row-normalized (mean) adjacency `D^{-1} A`; isolated nodes get a
    /// zero row (their neighbor term vanishes, the self term remains).
    pub fn mean_adjacency(g: &Graph) -> CsrMatrix {
        let n = g.num_nodes();
        let triplets = (0..n).flat_map(|v| {
            let deg = g.degree(v) as f64;
            g.neighbors(v)
                .map(move |u| (v, u, 1.0 / deg))
                .collect::<Vec<_>>()
        });
        CsrMatrix::from_triplets(n, n, triplets)
    }

    fn init_params(&self, in_dim: usize, num_classes: usize) -> Vec<DenseMatrix> {
        let s = self.config.seed;
        vec![
            DenseMatrix::glorot(in_dim, self.hidden, s),
            DenseMatrix::glorot(in_dim, self.hidden, s.wrapping_add(1)),
            DenseMatrix::glorot(self.hidden, num_classes, s.wrapping_add(2)),
            DenseMatrix::glorot(self.hidden, num_classes, s.wrapping_add(3)),
        ]
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &[DenseMatrix],
        am: &Rc<CsrMatrix>,
        x: &DenseMatrix,
        mode: Mode,
    ) -> (TensorId, Vec<TensorId>) {
        let ids: Vec<TensorId> = params.iter().map(|p| tape.var(p.clone())).collect();
        let mut h = tape.constant(x.clone());
        for layer in 0..2 {
            if let (true, Some(epoch)) = (self.config.dropout > 0.0, mode.train_epoch()) {
                let seed = self
                    .config
                    .seed
                    .wrapping_add(70_000)
                    .wrapping_add((epoch as u64) * 17 + layer as u64);
                h = tape.dropout(h, self.config.dropout, seed);
            }
            // lint: allow(check_site) reason=forward builds one epoch's graph; the §11 check sits at the epoch boundary in the train loop
            let own = tape.matmul(h, ids[2 * layer]);
            let agg = tape.spmm(Rc::clone(am), h);
            let neigh = tape.matmul(agg, ids[2 * layer + 1]);
            h = tape.add(own, neigh);
            if layer == 0 {
                h = tape.relu(h);
            }
        }
        (h, ids)
    }

    /// Logits for `g` using the trained parameters.
    pub fn logits(&self, g: &Graph) -> DenseMatrix {
        assert!(!self.params.is_empty(), "model is not trained");
        let am = Rc::new(Self::mean_adjacency(g));
        let mut tape = Tape::new();
        let (out, _) = self.forward(&mut tape, &self.params, &am, &g.features, Mode::Eval);
        tape.value(out).clone()
    }
}

impl NodeClassifier for GraphSage {
    fn fit(&mut self, g: &Graph) -> TrainReport {
        let am = Rc::new(Self::mean_adjacency(g));
        let mut params = self.init_params(g.feature_dim(), g.num_classes);
        let x = g.features.clone();
        let cfg = self.config.clone();
        let salt = bbgnn_store::enabled()
            .then(|| bbgnn_store::Key::new("model/sage").field("hidden", self.hidden));
        let this = &*self;
        let report = train_node_classifier_keyed(&mut params, g, &cfg, salt, |tape, p, mode| {
            this.forward(tape, p, &am, &x, mode)
        });
        self.params = params;
        report
    }

    fn predict(&self, g: &Graph) -> Vec<usize> {
        self.logits(g).row_argmax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn mean_adjacency_rows_sum_to_one_or_zero() {
        let g = DatasetSpec::CoraLike.generate(0.05, 611);
        let am = GraphSage::mean_adjacency(&g);
        for (v, s) in am.row_sums().iter().enumerate() {
            if g.degree(v) == 0 {
                assert_eq!(*s, 0.0);
            } else {
                assert!((s - 1.0).abs() < 1e-12, "row {v} sums to {s}");
            }
        }
    }

    #[test]
    fn sage_learns_homophilous_sbm() {
        // Scale 0.1: GraphSAGE needs a slightly larger graph than the GCN
        // tests before its accuracy is stable across RNG streams.
        let g = DatasetSpec::CoraLike.generate(0.1, 612);
        let mut sage = GraphSage::new(16, TrainConfig::fast_test());
        sage.fit(&g);
        let acc = sage.test_accuracy(&g);
        assert!(acc > 0.55, "GraphSAGE accuracy {acc} too low");
    }
}
