//! The rule engine: every invariant `bbgnn-lint` enforces, as token-level
//! scans over one file.
//!
//! Rule catalog (see DESIGN.md §9 for the rationale behind each):
//!
//! | rule | scope | fires on |
//! |---|---|---|
//! | `fma` | numeric-crate library code | `mul_add` (FMA contraction changes bits) |
//! | `hash_iter` | numeric-crate library code | iterating a `HashMap`/`HashSet` (order is seeded per process) |
//! | `clock` | numeric-crate library code; `thread::sleep` everywhere | `Instant::now` / `SystemTime` (wall-clock reads outside `obs`/`bench`); `thread::sleep` anywhere, tests included (inject a sleeper instead) |
//! | `unsafe` | whole workspace | `unsafe` outside `linalg::kernels` and `supervise::signal`; undocumented `unsafe` inside them |
//! | `panic` | all library code | `.unwrap()` / `.expect(` / `panic!` outside tests and binaries |
//! | `obs_name` | library + binary code | a `span!`/`event!`/`counter`/`kernel_timer` name literal absent from the DESIGN.md §8 taxonomy |
//! | `fault_site` | whole workspace | a `fault_at(...)` site literal absent from the DESIGN.md §11 fault-site catalog |
//!
//! Scans are lexical, so they check what is *written*, not what is
//! *executed*: a `HashSet` iterated through a helper in another crate or a
//! clock read behind a type alias will not fire. The dynamic CI jobs
//! (Miri, ThreadSanitizer, the 1-vs-N reproducibility diff) cover what a
//! lexer cannot see; the lint covers what a human reviewer would otherwise
//! re-derive from DESIGN.md §7–§8 on every PR.

use crate::allow::{apply_allows, parse_allows};
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::parse::test_token_mask;
use crate::taxonomy::Taxonomy;

/// Crates whose library code carries the bitwise-determinism contract
/// (DESIGN.md §7): every numeric decision must be reproducible across
/// thread counts, processes, and tracing on/off.
pub const NUMERIC_CRATES: [&str; 5] = ["linalg", "autodiff", "gnn", "attack", "defense"];

/// The files allowed to contain `unsafe` (with a `// SAFETY:` comment per
/// block): the AVX2 dispatch sites of the kernel layer and the `signal(2)`
/// FFI binding of the supervision layer.
pub const UNSAFE_ALLOWED_FILES: [&str; 2] = [
    "crates/linalg/src/kernels.rs",
    "crates/supervise/src/signal.rs",
];

/// Identifier of one lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    Fma,
    HashIter,
    Clock,
    Unsafe,
    Panic,
    ObsName,
    FaultSite,
    /// Graph rule (see [`crate::flow`]): unsupervised loop over kernel work.
    CheckSite,
    /// Graph rule: store key missing a config field.
    KeyFields,
    /// Graph rule: §8 taxonomy name no workspace code can emit.
    DeadTaxonomy,
    /// Graph rule: allocation in a kernel hot region.
    HotAlloc,
    /// Meta-rule: a malformed `lint: allow(...)` directive.
    LintAllow,
}

impl Rule {
    /// Rule names as written in `lint: allow(<name>)`.
    pub const KNOWN: [&'static str; 11] = [
        "fma",
        "hash_iter",
        "clock",
        "unsafe",
        "panic",
        "obs_name",
        "fault_site",
        "check_site",
        "key_fields",
        "dead_taxonomy",
        "hot_alloc",
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::Fma => "fma",
            Rule::HashIter => "hash_iter",
            Rule::Clock => "clock",
            Rule::Unsafe => "unsafe",
            Rule::Panic => "panic",
            Rule::ObsName => "obs_name",
            Rule::FaultSite => "fault_site",
            Rule::CheckSite => "check_site",
            Rule::KeyFields => "key_fields",
            Rule::DeadTaxonomy => "dead_taxonomy",
            Rule::HotAlloc => "hot_alloc",
            Rule::LintAllow => "lint_allow",
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fma" => Some(Rule::Fma),
            "hash_iter" => Some(Rule::HashIter),
            "clock" => Some(Rule::Clock),
            "unsafe" => Some(Rule::Unsafe),
            "panic" => Some(Rule::Panic),
            "obs_name" => Some(Rule::ObsName),
            "fault_site" => Some(Rule::FaultSite),
            "check_site" => Some(Rule::CheckSite),
            "key_fields" => Some(Rule::KeyFields),
            "dead_taxonomy" => Some(Rule::DeadTaxonomy),
            "hot_alloc" => Some(Rule::HotAlloc),
            _ => None,
        }
    }
}

/// One finding, pointing at a file and 1-based line.
#[derive(Clone, Debug)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub msg: String,
}

impl Violation {
    pub fn new(file: &str, line: u32, rule: Rule, msg: String) -> Self {
        Violation {
            file: file.to_string(),
            line,
            rule,
            msg,
        }
    }

    /// `path:line: [rule] message` — the report format, clickable in most
    /// terminals and editors.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<k>/src/**` (not `src/bin`): rules for library code apply.
    Lib,
    /// `crates/<k>/src/bin/**`: binaries may unwrap CLI errors freely.
    Bin,
    /// Test, bench, or example code — only the `unsafe` rule applies.
    TestLike,
}

/// Path-derived classification consumed by the rule scopes.
#[derive(Clone, Debug)]
pub struct FileInfo {
    /// `crates/<k>/...` crate name, if any.
    pub krate: Option<String>,
    pub kind: FileKind,
}

/// Classifies a workspace-relative, forward-slash path.
pub fn classify(rel_path: &str) -> FileInfo {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 3 {
        let krate = Some(parts[1].to_string());
        let kind = match parts[2] {
            "src" if parts.get(3) == Some(&"bin") => FileKind::Bin,
            "src" if parts.get(3) == Some(&"main.rs") => FileKind::Bin,
            "src" => FileKind::Lib,
            _ => FileKind::TestLike, // tests/, benches/, examples/
        };
        return FileInfo { krate, kind };
    }
    FileInfo {
        krate: None,
        kind: FileKind::TestLike,
    }
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub allows_used: usize,
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Punct)
        .and_then(|t| t.text.chars().next())
}

fn is_ident(toks: &[Tok], i: usize, s: &str) -> bool {
    ident_at(toks, i) == Some(s)
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    punct_at(toks, i) == Some(c)
}

/// Identifiers bound (via `let` / `let mut`) to a statement mentioning
/// `HashMap` or `HashSet` anywhere — type annotation, `::new()`,
/// `::with_capacity`, or a turbofished `collect`.
fn hashy_bindings(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks, i, "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if is_ident(toks, j, "mut") {
            j += 1;
        }
        let Some(name) = ident_at(toks, j) else {
            i = j;
            continue;
        };
        // `let Some(x) = ...`, `let (a, b) = ...`: not a simple binding.
        if is_punct(toks, j + 1, '(') {
            i = j + 1;
            continue;
        }
        // Scan the statement (to `;` at depth 0, capped) for hash types.
        let mut depth = 0isize;
        let mut hashy = false;
        let mut k = j + 1;
        let cap = (j + 200).min(toks.len());
        while k < cap {
            match punct_at(toks, k) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                Some(';') if depth <= 0 => break,
                _ => {
                    if matches!(ident_at(toks, k), Some("HashMap") | Some("HashSet")) {
                        hashy = true;
                    }
                }
            }
            k += 1;
        }
        if hashy {
            names.push(name.to_string());
        }
        i = k;
    }
    names
}

/// Methods that iterate a collection in storage order.
const ITERATING_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Lints one file. `rel_path` must be workspace-relative with forward
/// slashes; `tax` is the parsed DESIGN.md §8 taxonomy.
pub fn lint_source(rel_path: &str, src: &str, tax: &Taxonomy) -> FileReport {
    lint_lexed(rel_path, &lex(src), tax)
}

/// Lints an already-lexed file — the workspace walk lexes each file once
/// and feeds the same token stream to this per-file pass and to the
/// symbol-graph builder ([`crate::symbols::Model::build`]).
pub fn lint_lexed(rel_path: &str, lx: &Lexed, tax: &Taxonomy) -> FileReport {
    let info = classify(rel_path);
    let toks = &lx.toks;
    let mask = test_token_mask(toks);
    let mut v: Vec<Violation> = Vec::new();

    let numeric_lib = info.kind == FileKind::Lib
        && info
            .krate
            .as_deref()
            .is_some_and(|k| NUMERIC_CRATES.contains(&k));

    // --- determinism: fma + clock -----------------------------------------
    if numeric_lib {
        for (i, t) in toks.iter().enumerate() {
            if mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "mul_add" => v.push(Violation::new(
                    rel_path,
                    t.line,
                    Rule::Fma,
                    "mul_add fuses the multiply-add (different rounding than mul then add); \
                     the §7 bitwise-determinism contract forbids FMA in numeric paths"
                        .to_string(),
                )),
                "Instant"
                    if is_punct(toks, i + 1, ':')
                        && is_punct(toks, i + 2, ':')
                        && is_ident(toks, i + 3, "now") =>
                {
                    v.push(Violation::new(
                        rel_path,
                        t.line,
                        Rule::Clock,
                        "Instant::now in a numeric crate — clock reads belong in crates/obs \
                         and crates/bench; wall-clock reporting must never branch numerics"
                            .to_string(),
                    ));
                }
                "SystemTime" if is_punct(toks, i + 1, ':') && is_punct(toks, i + 2, ':') => {
                    v.push(Violation::new(
                        rel_path,
                        t.line,
                        Rule::Clock,
                        "SystemTime in a numeric crate — clock reads belong in crates/obs \
                         and crates/bench"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }

        // --- determinism: hash_iter ---------------------------------------
        let hashy = hashy_bindings(toks);
        let is_hashy = |name: &str| hashy.iter().any(|h| h == name);
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            // set.iter() / map.keys() / set.drain(..) ...
            if let Some(name) = ident_at(toks, i) {
                if is_hashy(name) && is_punct(toks, i + 1, '.') {
                    if let Some(m) = ident_at(toks, i + 2) {
                        if ITERATING_METHODS.contains(&m) && !is_punct(toks, i.wrapping_sub(1), '.')
                        {
                            v.push(Violation::new(
                                rel_path,
                                toks[i].line,
                                Rule::HashIter,
                                format!(
                                    "`{name}.{m}(...)` iterates a HashMap/HashSet — iteration \
                                     order is seeded per process; use a sorted Vec (or keep the \
                                     hash collection for membership only)"
                                ),
                            ));
                        }
                    }
                }
            }
            // out.extend(set) / out.extend(&set)
            if is_ident(toks, i, "extend") && is_punct(toks, i + 1, '(') {
                let mut j = i + 2;
                if is_punct(toks, j, '&') {
                    j += 1;
                }
                if is_ident(toks, j, "mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(toks, j) {
                    if is_hashy(name) && is_punct(toks, j + 1, ')') {
                        v.push(Violation::new(
                            rel_path,
                            toks[i].line,
                            Rule::HashIter,
                            format!(
                                "`.extend({name})` drains a HashMap/HashSet in seeded storage \
                                 order — collect into a Vec in insertion order instead"
                            ),
                        ));
                    }
                }
            }
            // for x in set { ... } / for x in &set { ... }
            if is_ident(toks, i, "for") {
                let cap = (i + 40).min(toks.len());
                for j in i + 1..cap {
                    if is_punct(toks, j, '{') {
                        break;
                    }
                    if is_ident(toks, j, "in") {
                        let mut k = j + 1;
                        if is_punct(toks, k, '&') {
                            k += 1;
                        }
                        if is_ident(toks, k, "mut") {
                            k += 1;
                        }
                        if let Some(name) = ident_at(toks, k) {
                            if is_hashy(name) && is_punct(toks, k + 1, '{') {
                                v.push(Violation::new(
                                    rel_path,
                                    toks[i].line,
                                    Rule::HashIter,
                                    format!(
                                        "`for _ in {name}` iterates a HashMap/HashSet — \
                                         iteration order is seeded per process"
                                    ),
                                ));
                            }
                        }
                        break;
                    }
                }
            }
        }
    }

    // --- clock: thread::sleep, everywhere (tests included) -----------------
    // Real sleeps belong behind the two injectable-sleeper seams
    // (RetryPolicy::run, FaultRunner); everything else — and every test —
    // uses the injected clock, so the scan deliberately ignores the
    // test-token mask.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "thread" {
            continue;
        }
        if is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
            && is_ident(toks, i + 3, "sleep")
        {
            v.push(Violation::new(
                rel_path,
                t.line,
                Rule::Clock,
                "thread::sleep — real sleeps hide behind the injectable-sleeper seams \
                 (RetryPolicy::run_with_sleep, FaultRunner::with_sleeper); tests must \
                 inject a virtual clock instead of burning wall-clock time (DESIGN.md §9)"
                    .to_string(),
            ));
        }
    }

    // --- unsafe hygiene ----------------------------------------------------
    for t in toks.iter() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !UNSAFE_ALLOWED_FILES.contains(&rel_path) {
            v.push(Violation::new(
                rel_path,
                t.line,
                Rule::Unsafe,
                format!(
                    "`unsafe` is forbidden outside {} — they are the only audited unsafe \
                     surfaces (DESIGN.md §7, §11)",
                    UNSAFE_ALLOWED_FILES.join(" and ")
                ),
            ));
        } else if !has_safety_comment(lx, t.line) {
            v.push(Violation::new(
                rel_path,
                t.line,
                Rule::Unsafe,
                "`unsafe` without a `// SAFETY:` comment — state the disjointness / in-bounds \
                 argument the block relies on"
                    .to_string(),
            ));
        }
    }

    // --- panic paths ---------------------------------------------------
    if info.kind == FileKind::Lib {
        for (i, t) in toks.iter().enumerate() {
            if mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "unwrap" | "expect"
                    if is_punct(toks, i.wrapping_sub(1), '.') && is_punct(toks, i + 1, '(') =>
                {
                    v.push(Violation::new(
                        rel_path,
                        t.line,
                        Rule::Panic,
                        format!(
                            ".{}() in library code — route the failure through BbgnnError \
                             (crates/errors) or justify with lint: allow(panic)",
                            t.text
                        ),
                    ));
                }
                "panic" if is_punct(toks, i + 1, '!') => {
                    v.push(Violation::new(
                        rel_path,
                        t.line,
                        Rule::Panic,
                        "panic! in library code — return a BbgnnError or justify with \
                         lint: allow(panic)"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }

    // --- obs name taxonomy ----------------------------------------------
    if matches!(info.kind, FileKind::Lib | FileKind::Bin) {
        for (i, t) in toks.iter().enumerate() {
            if mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            let (name_tok, kind) = match t.text.as_str() {
                "span" | "event" if is_punct(toks, i + 1, '!') && is_punct(toks, i + 2, '(') => {
                    (toks.get(i + 3), t.text.as_str())
                }
                "counter" if is_punct(toks, i + 1, '(') => (toks.get(i + 2), "counter"),
                "kernel_timer" if is_punct(toks, i + 1, '(') => (toks.get(i + 2), "kernel_timer"),
                _ => continue,
            };
            let Some(name_tok) = name_tok.filter(|n| n.kind == TokKind::Str) else {
                continue; // dynamic name — checked at runtime by trace_report
            };
            let name = &name_tok.text;
            let ok = match kind {
                "span" => tax.span_ok(name),
                "event" => tax.event_ok(name),
                "counter" => tax.counter_ok(name),
                _ => tax.kernel_ok(name),
            };
            if !ok {
                v.push(Violation::new(
                    rel_path,
                    name_tok.line,
                    Rule::ObsName,
                    format!(
                        "{kind} name {name:?} is not in the DESIGN.md §8 taxonomy — add it to \
                         the doc's bullet list or fix the name (docs and code must not drift)"
                    ),
                ));
            }
        }
    }

    // --- fault-site catalog (whole workspace, tests included) -------------
    // Every `fault_at("...")` literal must name a DESIGN.md §11 catalog
    // entry: an uncataloged site can never be reached by a BBGNN_FAULTS
    // plan (`fault::install` rejects it), so it is dead chaos coverage.
    // Dynamic site expressions are checked at install time instead.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "fault_at" || !is_punct(toks, i + 1, '(') {
            continue;
        }
        let Some(name_tok) = toks.get(i + 2).filter(|n| n.kind == TokKind::Str) else {
            continue;
        };
        if !tax.fault_site_ok(&name_tok.text) {
            v.push(Violation::new(
                rel_path,
                name_tok.line,
                Rule::FaultSite,
                format!(
                    "fault site {:?} is not in the DESIGN.md §11 catalog — add it to the \
                     catalog bullet and supervise::fault::FAULT_SITES, or fix the name \
                     (an uncataloged site is unreachable by any BBGNN_FAULTS plan)",
                    name_tok.text
                ),
            ));
        }
    }

    // --- apply allowlist -------------------------------------------------
    let (mut allows, mut bad_allows) = parse_allows(rel_path, lx);
    let (mut kept, allows_used) = apply_allows(v, &mut allows);
    kept.append(&mut bad_allows);
    kept.sort_by_key(|x| x.line);
    FileReport {
        violations: kept,
        allows_used,
    }
}

/// True if the contiguous comment block directly above `line` (skipping
/// blank and attribute-only lines) or a trailing comment on `line` itself
/// contains `SAFETY`.
fn has_safety_comment(lx: &Lexed, line: u32) -> bool {
    if lx.comment_text_on(line).contains("SAFETY") {
        return true;
    }
    let mut l = line.saturating_sub(1);
    for _ in 0..25 {
        if l == 0 {
            return false;
        }
        if lx.line_has_comment(l) && lx.comment_text_on(l).contains("SAFETY") {
            return true;
        }
        if lx.line_has_code(l) {
            // Attribute lines (`#[target_feature(...)]`) may sit between
            // the SAFETY comment and the unsafe fn; anything else ends the
            // upward scan.
            let first = lx.toks.iter().find(|t| t.line == l);
            match first {
                Some(t) if t.text == "#" => {}
                _ => return false,
            }
        }
        l -= 1;
    }
    false
}
