//! A hand-rolled recursive-descent **item parser** over the token stream.
//!
//! The per-file rules of [`crate::rules`] are pure token scans; the
//! cross-file rules of [`crate::flow`] need more shape: which functions a
//! file defines, what they call, whether the call happens inside a loop,
//! which structs exist and what their fields are. This module recovers
//! exactly that much structure — items, not expressions — from the
//! [`crate::lexer`] output, keeping the workspace's no-`syn`,
//! zero-dependency rule.
//!
//! The parser is a single forward pass with an explicit scope stack:
//! `mod`/`impl`/`fn` headers open named scopes at their `{`, everything
//! else opens an anonymous block. It is *approximate by design* — the
//! documented misses (DESIGN.md §9):
//!
//! * a closure in a `for`-loop *header* (`for x in v.iter().map(|y| {…})`)
//!   attaches the loop-body flag to the closure instead of the body — the
//!   closure still runs once per iteration, so in-loop call attribution
//!   stays semantically right, but the body's own calls read as
//!   out-of-loop;
//! * type-level trickery (`fn` pointers, associated types, macros that
//!   *generate* items) is invisible;
//! * field detection reads `ident:` pairs at struct-brace depth 1, so a
//!   field whose type embeds a bare `ident:` (unheard of in this
//!   workspace) would over-report.

use crate::lexer::{Lexed, Tok, TokKind};

/// One call expression found inside a function body: `name(...)`,
/// `path::name(...)`, or `recv.name(...)`.
#[derive(Clone, Debug)]
pub struct Call {
    /// The called identifier (last path segment).
    pub name: String,
    /// The path segment directly before `::name`, if the call was
    /// path-qualified (`kernels::matmul_into` → `Some("kernels")`).
    pub qualifier: Option<String>,
    /// True for `recv.name(...)` method syntax.
    pub is_method: bool,
    /// True for `name!(...)` / `name![...]` / `name!{...}` macro
    /// invocations — most rules skip these; `hot_alloc` wants `vec!`.
    pub is_macro: bool,
    /// 1-based source line of the call.
    pub line: u32,
    /// True when the call sits inside a `for`/`while`/`loop` body of the
    /// enclosing function.
    pub in_loop: bool,
}

/// One `fn` item (free function, impl method, or nested fn).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method.
    pub impl_type: Option<String>,
    /// `Type::name` for methods, `name` otherwise (module path omitted —
    /// resolution is by name, DESIGN.md §9).
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (the closing `}`); `line` for bodyless fns.
    pub end_line: u32,
    /// Every identifier in the signature (parameter names *and* types) —
    /// consumers filter these against known struct names.
    pub sig_idents: Vec<String>,
    /// Calls made in the body, in source order.
    pub calls: Vec<Call>,
    /// Sorted, deduplicated identifiers appearing in the body.
    pub body_idents: Vec<String>,
    /// True if the body contains a `for`/`while`/`loop`.
    pub has_loop: bool,
    /// True if the fn sits under `#[test]` / `#[cfg(test)]`.
    pub in_test: bool,
}

impl FnItem {
    /// True if `ident` appears in the body.
    pub fn mentions(&self, ident: &str) -> bool {
        self.body_idents
            .binary_search_by(|s| s.as_str().cmp(ident))
            .is_ok()
    }
}

/// One `struct` item with named fields (tuple and unit structs are
/// recorded with an empty field list).
#[derive(Clone, Debug)]
pub struct StructItem {
    pub name: String,
    /// Field names with their 1-based lines, in declaration order.
    pub fields: Vec<(String, u32)>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// True if declared under `#[cfg(test)]`.
    pub in_test: bool,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(toks: &[Tok], i: usize) -> Option<char> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Punct)
        .and_then(|t| t.text.chars().next())
}

/// Marks every token that belongs to a `#[test]` function or a
/// `#[cfg(test)]` (or `#[cfg(all(test, ...))]`) item, so rules that only
/// govern shipped code can skip test modules. `cfg(not(test))` and
/// `cfg_attr(...)` attributes do **not** mark a region.
pub(crate) fn test_token_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];

    // Consumes an attribute starting at its `[`; returns (index after the
    // matching `]`, idents inside).
    fn scan_attr(toks: &[Tok], open: usize) -> (usize, Vec<String>) {
        let mut depth = 0usize;
        let mut idents = Vec::new();
        let mut i = open;
        while i < toks.len() {
            match punct_at(toks, i) {
                Some('[') => depth += 1,
                Some(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return (i + 1, idents);
                    }
                }
                _ => {
                    if let Some(id) = ident_at(toks, i) {
                        idents.push(id.to_string());
                    }
                }
            }
            i += 1;
        }
        (i, idents)
    }

    let mut i = 0usize;
    while i < toks.len() {
        if !(punct_at(toks, i) == Some('#') && punct_at(toks, i + 1) == Some('[')) {
            i += 1;
            continue;
        }
        let (after_attr, idents) = scan_attr(toks, i + 1);
        let first = idents.first().map(String::as_str);
        let is_test_attr = match first {
            Some("test") => idents.len() == 1,
            Some("cfg") => idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not"),
            _ => false,
        };
        if !is_test_attr {
            i = after_attr;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = after_attr;
        while punct_at(toks, j) == Some('#') && punct_at(toks, j + 1) == Some('[') {
            j = scan_attr(toks, j + 1).0;
        }
        // The item extends to its body's matching `}` or, for bodyless
        // items, the terminating `;` at bracket depth 0.
        let mut depth = 0isize;
        let mut end = j;
        while end < toks.len() {
            match punct_at(toks, end) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some(';') if depth == 0 => break,
                Some('{') => {
                    let mut braces = 0isize;
                    while end < toks.len() {
                        match punct_at(toks, end) {
                            Some('{') => braces += 1,
                            Some('}') => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end += 1;
                    }
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for m in mask.iter_mut().take((end + 1).min(toks.len())).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Rust keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: [&str; 8] = [
    "if", "while", "for", "match", "loop", "return", "fn", "move",
];

/// One entry of the brace-scope stack.
#[derive(Clone, Debug)]
enum Scope {
    /// `mod name { ... }`
    Mod,
    /// `impl [Trait for] Type { ... }` — carries the self type name.
    Impl(String),
    /// A fn body — carries the index into `ParsedFile::fns`.
    Fn(usize),
    /// A `for`/`while`/`loop` body.
    Loop,
    /// Any other `{ ... }` (blocks, match bodies, struct literals, ...).
    Block,
}

/// What kind of scope the *next* `{` should open.
#[derive(Clone, Debug)]
enum Pending {
    Mod,
    Impl(String),
    Fn(usize),
    Loop,
}

/// Parses one lexed file into its items. Never fails — unparseable
/// stretches degrade to anonymous blocks, which is the forgiving behavior
/// an analyzer wants on in-progress code.
pub fn parse_file(lx: &Lexed) -> ParsedFile {
    let toks = &lx.toks;
    let mask = test_token_mask(toks);
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut i = 0usize;

    // Innermost enclosing fn index on the scope stack, if any.
    fn current_fn(scopes: &[Scope]) -> Option<usize> {
        scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(idx) => Some(*idx),
            _ => None,
        })
    }
    fn current_impl(scopes: &[Scope]) -> Option<&str> {
        scopes.iter().rev().find_map(|s| match s {
            Scope::Impl(t) => Some(t.as_str()),
            _ => None,
        })
    }
    // True if there is a Loop scope above the innermost Fn scope.
    fn in_loop(scopes: &[Scope]) -> bool {
        for s in scopes.iter().rev() {
            match s {
                Scope::Loop => return true,
                Scope::Fn(_) => return false,
                _ => {}
            }
        }
        false
    }

    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => {
                match t.text.as_bytes().first() {
                    Some(b'{') => {
                        scopes.push(match pending.take() {
                            Some(Pending::Mod) => Scope::Mod,
                            Some(Pending::Impl(ty)) => Scope::Impl(ty),
                            Some(Pending::Fn(idx)) => Scope::Fn(idx),
                            Some(Pending::Loop) => Scope::Loop,
                            None => Scope::Block,
                        });
                    }
                    Some(b'}') => {
                        if let Some(Scope::Fn(idx)) = scopes.last() {
                            out.fns[*idx].end_line = t.line;
                        }
                        scopes.pop();
                    }
                    // A bodyless item header (trait method, `mod x;`,
                    // tuple struct) never gets its `{`.
                    Some(b';') if !matches!(pending, Some(Pending::Loop)) => {
                        pending = None;
                    }
                    _ => {}
                }
                i += 1;
            }
            TokKind::Ident => {
                let in_fn = current_fn(&scopes);
                match t.text.as_str() {
                    "mod" if in_fn.is_none() && ident_at(toks, i + 1).is_some() => {
                        pending = Some(Pending::Mod);
                        i += 2;
                    }
                    "impl" if in_fn.is_none() => {
                        let (after, ty) = parse_impl_header(toks, i + 1);
                        pending = Some(Pending::Impl(ty));
                        i = after;
                    }
                    "struct" if in_fn.is_none() => {
                        let (after, item) = parse_struct(toks, i, mask[i]);
                        if let Some(item) = item {
                            out.structs.push(item);
                        }
                        i = after;
                    }
                    "fn" => {
                        // `fn(` is a fn-pointer type, not an item.
                        let Some(name) = ident_at(toks, i + 1) else {
                            i += 1;
                            continue;
                        };
                        let impl_type = current_impl(&scopes).map(str::to_string);
                        let qual = match &impl_type {
                            Some(ty) => format!("{ty}::{name}"),
                            None => name.to_string(),
                        };
                        let (after, sig_idents, has_body) = parse_fn_signature(toks, i + 2);
                        let item = FnItem {
                            name: name.to_string(),
                            impl_type,
                            qual,
                            line: t.line,
                            end_line: t.line,
                            sig_idents,
                            calls: Vec::new(),
                            body_idents: Vec::new(),
                            has_loop: false,
                            in_test: mask[i],
                        };
                        let idx = out.fns.len();
                        out.fns.push(item);
                        if has_body {
                            pending = Some(Pending::Fn(idx));
                        }
                        i = after;
                    }
                    "for" | "while" | "loop" if in_fn.is_some() => {
                        if let Some(idx) = in_fn {
                            out.fns[idx].has_loop = true;
                            out.fns[idx].body_idents.push(t.text.clone());
                        }
                        pending = Some(Pending::Loop);
                        i += 1;
                    }
                    name => {
                        if let Some(idx) = in_fn {
                            out.fns[idx].body_idents.push(name.to_string());
                            // A call — `name(` — or a macro invocation
                            // (`name!(..)` / `name![..]` / `name!{..}`),
                            // but not a keyword or a nested-fn header.
                            let is_call = punct_at(toks, i + 1) == Some('(');
                            let is_macro = punct_at(toks, i + 1) == Some('!')
                                && matches!(
                                    punct_at(toks, i + 2),
                                    Some('(') | Some('[') | Some('{')
                                );
                            if (is_call || is_macro)
                                && !CALLISH_KEYWORDS.contains(&name)
                                && ident_at(toks, i.wrapping_sub(1)) != Some("fn")
                            {
                                let is_method = punct_at(toks, i.wrapping_sub(1)) == Some('.');
                                let qualifier = if punct_at(toks, i.wrapping_sub(1)) == Some(':')
                                    && punct_at(toks, i.wrapping_sub(2)) == Some(':')
                                {
                                    ident_at(toks, i.wrapping_sub(3)).map(str::to_string)
                                } else {
                                    None
                                };
                                out.fns[idx].calls.push(Call {
                                    name: name.to_string(),
                                    qualifier,
                                    is_method,
                                    is_macro,
                                    line: t.line,
                                    in_loop: in_loop(&scopes),
                                });
                            }
                        }
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }

    for f in &mut out.fns {
        f.body_idents.sort();
        f.body_idents.dedup();
    }
    out
}

/// Parses an `impl` header starting just after the `impl` keyword.
/// Returns (index of the `{` or `;` that ends the header, self type name).
fn parse_impl_header(toks: &[Tok], mut i: usize) -> (usize, String) {
    // Skip the generic parameter list, if any.
    if punct_at(toks, i) == Some('<') {
        let mut depth = 0isize;
        while i < toks.len() {
            match punct_at(toks, i) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Collect path segments until `{`, `;`, or `where`; a `for` restarts
    // the collection (the self type is the path after it). Angle-bracket
    // groups are skipped wholesale so `Holder<T>` keeps `Holder`, not `T`.
    let mut ty = String::new();
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('{') | Some(';') => break,
            Some('<') => {
                let mut depth = 0isize;
                while i < toks.len() {
                    match punct_at(toks, i) {
                        Some('<') => depth += 1,
                        Some('>') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => {}
        }
        match ident_at(toks, i) {
            Some("for") => ty.clear(),
            Some("where") => {
                // Skip the where clause entirely.
                while i < toks.len() && punct_at(toks, i) != Some('{') {
                    i += 1;
                }
                break;
            }
            Some("dyn") | Some("mut") => {}
            // Keep the *last* path segment seen: `bbgnn_store::Key` → Key.
            Some(id) => ty = id.to_string(),
            None => {}
        }
        i += 1;
    }
    (i, ty)
}

/// Parses a fn signature starting at the `(` (or wherever generics begin).
/// Returns (index after the signature — at the body `{` if there is one,
/// else after the `;`), the signature idents, and whether a body follows.
fn parse_fn_signature(toks: &[Tok], mut i: usize) -> (usize, Vec<String>, bool) {
    let mut idents = Vec::new();
    // Generic parameter list before the parens.
    if punct_at(toks, i) == Some('<') {
        let mut depth = 0isize;
        while i < toks.len() {
            match punct_at(toks, i) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {
                    if let Some(id) = ident_at(toks, i) {
                        idents.push(id.to_string());
                    }
                }
            }
            i += 1;
        }
    }
    // Parameter list.
    if punct_at(toks, i) == Some('(') {
        let mut depth = 0isize;
        while i < toks.len() {
            match punct_at(toks, i) {
                Some('(') => depth += 1,
                Some(')') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {
                    if let Some(id) = ident_at(toks, i) {
                        idents.push(id.to_string());
                    }
                }
            }
            i += 1;
        }
    }
    // Return type / where clause, up to the body `{` or the `;`.
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('{') => return (i, idents, true),
            Some(';') => return (i + 1, idents, false),
            _ => {}
        }
        if let Some(id) = ident_at(toks, i) {
            idents.push(id.to_string());
        }
        i += 1;
    }
    (i, idents, false)
}

/// Parses a `struct` item starting at the `struct` keyword. Returns
/// (index after the item, the parsed item). Tuple and unit structs are
/// recorded with no fields.
fn parse_struct(toks: &[Tok], start: usize, in_test: bool) -> (usize, Option<StructItem>) {
    let line = toks[start].line;
    let Some(name) = ident_at(toks, start + 1) else {
        return (start + 1, None);
    };
    let mut i = start + 2;
    // Generics.
    if punct_at(toks, i) == Some('<') {
        let mut depth = 0isize;
        while i < toks.len() {
            match punct_at(toks, i) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // `where` clause before the brace.
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('{') => break,
            // Tuple (`struct X(...)`) or unit (`struct X;`) struct.
            Some('(') | Some(';') => {
                let mut j = i;
                let mut depth = 0isize;
                while j < toks.len() {
                    match punct_at(toks, j) {
                        Some('(') => depth += 1,
                        Some(')') => depth -= 1,
                        Some(';') if depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return (
                    j,
                    Some(StructItem {
                        name: name.to_string(),
                        fields: Vec::new(),
                        line,
                        in_test,
                    }),
                );
            }
            _ => {}
        }
        i += 1;
    }
    // Named-field body: `ident :` pairs at brace depth 1, each expected at
    // the start of a field (after `{`, `,`, an attribute, or visibility).
    let mut fields = Vec::new();
    let mut depth = 0isize;
    let mut expecting_field = false;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('{') => {
                depth += 1;
                if depth == 1 {
                    expecting_field = true;
                }
            }
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return (
                        i + 1,
                        Some(StructItem {
                            name: name.to_string(),
                            fields,
                            line,
                            in_test,
                        }),
                    );
                }
            }
            Some(',') if depth == 1 => expecting_field = true,
            Some('#') if depth == 1 => {
                // Skip a field attribute `#[...]`.
                if punct_at(toks, i + 1) == Some('[') {
                    let mut d = 0isize;
                    i += 1;
                    while i < toks.len() {
                        match punct_at(toks, i) {
                            Some('[') => d += 1,
                            Some(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Some('(') if depth == 1 => {
                // `pub(crate)` visibility — skip the parens.
                let mut d = 0isize;
                while i < toks.len() {
                    match punct_at(toks, i) {
                        Some('(') => d += 1,
                        Some(')') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => {
                if depth == 1 && expecting_field {
                    match ident_at(toks, i) {
                        Some("pub") => {}
                        Some(id)
                            if punct_at(toks, i + 1) == Some(':')
                                && punct_at(toks, i + 2) != Some(':') =>
                        {
                            fields.push((id.to_string(), toks[i].line));
                            expecting_field = false;
                        }
                        _ => expecting_field = false,
                    }
                }
            }
        }
        i += 1;
    }
    (
        i,
        Some(StructItem {
            name: name.to_string(),
            fields,
            line,
            in_test,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    #[test]
    fn free_fns_methods_and_struct_fields() {
        let src = r#"
            pub struct SimConfig {
                pub gamma: f64,
                pub(crate) steps: usize,
                seed: u64,
            }
            impl SimConfig {
                pub fn scaled(&self) -> f64 { self.gamma * 2.0 }
            }
            pub fn leaf(x: f64) -> f64 { x + 1.0 }
        "#;
        let p = parsed(src);
        assert_eq!(p.structs.len(), 1);
        let fields: Vec<&str> = p.structs[0]
            .fields
            .iter()
            .map(|(f, _)| f.as_str())
            .collect();
        assert_eq!(fields, ["gamma", "steps", "seed"]);
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["SimConfig::scaled", "leaf"]);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("SimConfig"));
        assert!(p.fns[0].mentions("gamma"));
    }

    #[test]
    fn calls_and_loop_attribution() {
        let src = r#"
            fn driver(cfg: &SimConfig) -> f64 {
                let mut acc = setup();
                for _ in 0..cfg.steps {
                    acc += helper(cfg.gamma);
                }
                finish(acc)
            }
        "#;
        let p = parsed(src);
        let f = &p.fns[0];
        assert!(f.has_loop);
        let calls: Vec<(&str, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.in_loop))
            .collect();
        assert_eq!(
            calls,
            [("setup", false), ("helper", true), ("finish", false)]
        );
        assert!(f.sig_idents.iter().any(|s| s == "SimConfig"));
    }

    #[test]
    fn qualified_and_method_calls() {
        let src = r#"
            fn go(m: &M) {
                kernels::matmul_into(m);
                bbgnn_supervise::check("site");
                m.fit(3);
                macro_like!(x);
            }
        "#;
        let p = parsed(src);
        let f = &p.fns[0];
        assert_eq!(f.calls.len(), 4, "{:?}", f.calls);
        assert_eq!(f.calls[0].qualifier.as_deref(), Some("kernels"));
        assert_eq!(f.calls[1].qualifier.as_deref(), Some("bbgnn_supervise"));
        assert!(f.calls[2].is_method);
        assert!(f.calls[3].is_macro && f.calls[3].name == "macro_like");
        assert!(!f.calls[..3].iter().any(|c| c.is_macro));
    }

    #[test]
    fn impl_trait_for_type_resolves_the_self_type() {
        let src = r#"
            impl fmt::Display for bbgnn_store::Key {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, "k") }
            }
            impl<T: Clone> Holder<T> {
                fn get(&self) -> T { self.v.clone() }
            }
        "#;
        let p = parsed(src);
        assert_eq!(p.fns[0].qual, "Key::fmt");
        assert_eq!(p.fns[1].qual, "Holder::get");
    }

    #[test]
    fn while_and_nested_loops_mark_in_loop_calls() {
        let src = r#"
            fn a() {
                while cond() {
                    if x { inner(); }
                }
                after();
            }
            fn b() { loop { tick(); break; } }
        "#;
        let p = parsed(src);
        let a = &p.fns[0];
        // `cond()` sits in the while *header* (before the `{`): out-of-loop.
        let by_name = |f: &FnItem, n: &str| f.calls.iter().find(|c| c.name == n).map(|c| c.in_loop);
        assert_eq!(by_name(a, "inner"), Some(true));
        assert_eq!(by_name(a, "after"), Some(false));
        assert_eq!(by_name(&p.fns[1], "tick"), Some(true));
    }

    #[test]
    fn test_fns_are_marked_and_bodyless_fns_survive() {
        let src = r#"
            trait T { fn required(&self); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn check_it() { assert!(true); }
            }
            fn real() {}
        "#;
        let p = parsed(src);
        let names: Vec<(&str, bool)> = p.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(
            names,
            [("required", false), ("check_it", true), ("real", false)]
        );
    }

    #[test]
    fn tuple_structs_and_generics_do_not_confuse_fields() {
        let src = r#"
            pub struct Wrap(pub f64);
            pub struct Keyed<K: Ord> {
                pub index: Vec<K>,
                pub cap: usize,
            }
        "#;
        let p = parsed(src);
        assert_eq!(p.structs.len(), 2);
        assert!(p.structs[0].fields.is_empty());
        let fields: Vec<&str> = p.structs[1]
            .fields
            .iter()
            .map(|(f, _)| f.as_str())
            .collect();
        assert_eq!(fields, ["index", "cap"]);
    }
}
