//! Finite-difference gradient checks for every op on the tape.
//!
//! Each test exercises one op (or a realistic composition) and asserts the
//! analytic gradient matches central differences.

use bbgnn_autodiff::gradcheck::assert_gradients;
use bbgnn_linalg::{CsrMatrix, DenseMatrix};
use std::rc::Rc;

const TOL: f64 = 1e-5;

fn m(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::uniform(rows, cols, 1.0, seed)
}

/// Strictly positive matrix (for ln / fractional powers).
fn m_pos(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::uniform(rows, cols, 1.0, seed).map(|x| x.abs() + 0.5)
}

#[test]
fn grad_matmul() {
    assert_gradients(&[m(3, 4, 1), m(4, 2, 2)], TOL, |t, ids| {
        let c = t.matmul(ids[0], ids[1]);
        t.sum_all(c)
    });
}

#[test]
fn grad_spmm() {
    let s = Rc::new(CsrMatrix::from_triplets(
        3,
        3,
        vec![(0, 1, 2.0), (1, 0, -1.0), (2, 2, 0.5)],
    ));
    assert_gradients(&[m(3, 4, 3)], TOL, move |t, ids| {
        let c = t.spmm(Rc::clone(&s), ids[0]);
        let sq = t.hadamard(c, c);
        t.sum_all(sq)
    });
}

#[test]
fn grad_add_sub_hadamard() {
    assert_gradients(&[m(3, 3, 4), m(3, 3, 5), m(3, 3, 6)], TOL, |t, ids| {
        let a = t.add(ids[0], ids[1]);
        let b = t.sub(a, ids[2]);
        let h = t.hadamard(b, ids[0]);
        t.sum_all(h)
    });
}

#[test]
fn grad_scalar_mul_and_consts() {
    let c = Rc::new(m(2, 3, 100));
    assert_gradients(&[m(2, 3, 7)], TOL, move |t, ids| {
        let a = t.scalar_mul(ids[0], -2.5);
        let b = t.add_const(a, Rc::clone(&c));
        let h = t.hadamard_const(b, Rc::clone(&c));
        t.sum_all(h)
    });
}

#[test]
fn grad_relu() {
    // Shift away from 0 to avoid the kink.
    let x = m(3, 3, 8).map(|v| v + if v >= 0.0 { 0.1 } else { -0.1 });
    assert_gradients(&[x], TOL, |t, ids| {
        let r = t.relu(ids[0]);
        let sq = t.hadamard(r, r);
        t.sum_all(sq)
    });
}

#[test]
fn grad_leaky_relu() {
    let x = m(3, 3, 9).map(|v| v + if v >= 0.0 { 0.1 } else { -0.1 });
    assert_gradients(&[x], TOL, |t, ids| {
        let r = t.leaky_relu(ids[0], 0.2);
        let sq = t.hadamard(r, r);
        t.sum_all(sq)
    });
}

#[test]
fn grad_sigmoid_exp_ln() {
    assert_gradients(&[m_pos(3, 3, 10)], TOL, |t, ids| {
        let s = t.sigmoid(ids[0]);
        let e = t.exp(s);
        let l = t.ln(e);
        t.sum_all(l)
    });
}

#[test]
fn grad_pow_scalar_fractional_and_negative() {
    assert_gradients(&[m_pos(3, 3, 11)], 1e-4, |t, ids| {
        let a = t.pow_scalar(ids[0], -0.5);
        let b = t.pow_scalar(ids[0], 1.5);
        let s = t.add(a, b);
        t.sum_all(s)
    });
}

#[test]
fn grad_transpose() {
    assert_gradients(&[m(3, 5, 12)], TOL, |t, ids| {
        let tr = t.transpose(ids[0]);
        let sq = t.hadamard(tr, tr);
        t.sum_all(sq)
    });
}

#[test]
fn grad_row_sum_and_sum_all() {
    assert_gradients(&[m(4, 3, 13)], TOL, |t, ids| {
        let rs = t.row_sum(ids[0]);
        let sq = t.hadamard(rs, rs);
        t.sum_all(sq)
    });
}

#[test]
fn grad_scale_rows() {
    assert_gradients(&[m(4, 3, 14), m(4, 1, 15)], TOL, |t, ids| {
        let y = t.scale_rows(ids[0], ids[1]);
        let sq = t.hadamard(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_scale_cols() {
    assert_gradients(&[m(4, 3, 16), m(3, 1, 17)], TOL, |t, ids| {
        let y = t.scale_cols(ids[0], ids[1]);
        let sq = t.hadamard(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_softmax_rows() {
    assert_gradients(&[m(3, 4, 18), m(3, 4, 19)], TOL, |t, ids| {
        let y = t.softmax_rows(ids[0]);
        let w = t.hadamard(y, ids[1]);
        t.sum_all(w)
    });
}

#[test]
fn grad_masked_softmax_rows() {
    let mask = Rc::new(DenseMatrix::from_rows(&[
        &[1.0, 0.0, 1.0, 1.0],
        &[0.0, 1.0, 1.0, 0.0],
        &[1.0, 1.0, 1.0, 1.0],
    ]));
    assert_gradients(&[m(3, 4, 20), m(3, 4, 21)], TOL, move |t, ids| {
        let y = t.masked_softmax_rows(ids[0], Rc::clone(&mask));
        let w = t.hadamard(y, ids[1]);
        t.sum_all(w)
    });
}

#[test]
fn grad_cross_entropy() {
    let labels = Rc::new(vec![0, 2, 1, 0]);
    let rows = Rc::new(vec![0, 1, 3]);
    assert_gradients(&[m(4, 3, 22)], TOL, move |t, ids| {
        t.cross_entropy(ids[0], Rc::clone(&labels), Rc::clone(&rows))
    });
}

#[test]
fn grad_add_outer() {
    assert_gradients(&[m(3, 1, 23), m(4, 1, 24)], TOL, |t, ids| {
        let y = t.add_outer(ids[0], ids[1]);
        let sq = t.hadamard(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_concat_cols() {
    assert_gradients(&[m(3, 2, 25), m(3, 3, 26)], TOL, |t, ids| {
        let y = t.concat_cols(&[ids[0], ids[1]]);
        let sq = t.hadamard(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_add_bias() {
    assert_gradients(&[m(4, 3, 27), m(1, 3, 28)], TOL, |t, ids| {
        let y = t.add_bias(ids[0], ids[1]);
        let sq = t.hadamard(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_row_lp_norm_sum() {
    for &p in &[1.0, 2.0, 3.0] {
        // Keep entries away from zero where the norm is non-smooth.
        let x = m(4, 3, 29).map(|v| v + 0.3 * v.signum() + if v == 0.0 { 0.3 } else { 0.0 });
        assert_gradients(&[x], 1e-4, move |t, ids| t.row_lp_norm_sum(ids[0], p));
    }
}

#[test]
fn grad_neighbor_lp_norm_sum() {
    let adj = Rc::new(CsrMatrix::from_triplets(
        4,
        4,
        vec![
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (3, 0, 1.0),
            (0, 3, 1.0),
        ],
    ));
    let c = Rc::new(m(4, 3, 30));
    for &p in &[1.0, 2.0, 3.0] {
        let adj = Rc::clone(&adj);
        let c = Rc::clone(&c);
        // Offset so x[v] - c[u] has no zero coordinates.
        let x = m(4, 3, 31).map(|v| v + 5.0);
        assert_gradients(&[x], 1e-4, move |t, ids| {
            t.neighbor_lp_norm_sum(ids[0], Rc::clone(&adj), Rc::clone(&c), p)
        });
    }
}

#[test]
fn grad_dropout_with_fixed_mask() {
    // Dropout uses an internally generated mask keyed by seed; with the same
    // seed the mask is identical across probes, so finite differences are
    // valid.
    assert_gradients(&[m(4, 4, 32)], TOL, |t, ids| {
        let y = t.dropout(ids[0], 0.4, 99);
        let sq = t.hadamard(y, y);
        t.sum_all(sq)
    });
}

/// End-to-end composite: differentiate a 2-layer GCN-style forward pass with
/// respect to a *dense adjacency variable* through the normalization chain —
/// exactly the gradient PEEGA and Metattack rely on.
#[test]
fn grad_through_gcn_normalization_chain() {
    let a_sym = {
        let mut a = DenseMatrix::zeros(4, 4);
        for &(i, j) in &[(0usize, 1usize), (1, 2), (2, 3), (0, 3)] {
            a.set(i, j, 1.0);
            a.set(j, i, 1.0);
        }
        a
    };
    let x_feat = m_pos(4, 3, 33);
    let labels = Rc::new(vec![0, 1, 0, 1]);
    let rows = Rc::new(vec![0, 1, 2, 3]);
    let w = m(3, 2, 34);
    assert_gradients(&[a_sym, x_feat.clone(), w.clone()], 1e-4, move |t, ids| {
        let a = ids[0];
        let eye = Rc::new(DenseMatrix::identity(4));
        let a_hat = t.add_const(a, eye);
        let deg = t.row_sum(a_hat);
        let dinv = t.pow_scalar(deg, -0.5);
        let an_rows = t.scale_rows(a_hat, dinv);
        let an = t.scale_cols(an_rows, dinv);
        let an2 = t.matmul(an, an);
        let ax = t.matmul(an2, ids[1]);
        let logits = t.matmul(ax, ids[2]);
        t.cross_entropy(logits, Rc::clone(&labels), Rc::clone(&rows))
    });
}

/// End-to-end composite: the GAT attention path — add_outer, leaky-relu,
/// masked row softmax, and aggregation — differentiated with respect to the
/// head weights, exactly as `bbgnn_gnn::gat` builds it.
#[test]
fn grad_through_gat_attention_path() {
    let mask = Rc::new(DenseMatrix::from_rows(&[
        &[1.0, 1.0, 0.0, 1.0],
        &[1.0, 1.0, 1.0, 0.0],
        &[0.0, 1.0, 1.0, 0.0],
        &[1.0, 0.0, 0.0, 1.0],
    ]));
    let x = Rc::new(m(4, 3, 40));
    let labels = Rc::new(vec![0, 1, 0, 1]);
    let rows = Rc::new(vec![0, 1, 2, 3]);
    // Inputs: W (3x2), a_src (2x1), a_dst (2x1).
    assert_gradients(
        &[m(3, 2, 41), m(2, 1, 42), m(2, 1, 43)],
        1e-4,
        move |t, ids| {
            let xc = t.constant((*x).clone());
            let hw = t.matmul(xc, ids[0]);
            let src = t.matmul(hw, ids[1]);
            let dst = t.matmul(hw, ids[2]);
            let e = t.add_outer(src, dst);
            let e = t.leaky_relu(e, 0.2);
            let alpha = t.masked_softmax_rows(e, Rc::clone(&mask));
            let out = t.matmul(alpha, hw);
            t.cross_entropy(out, Rc::clone(&labels), Rc::clone(&rows))
        },
    );
}

/// End-to-end composite: PEEGA's full Def. 3 objective — normalization
/// chain, two-hop propagation, self-view and global-view norms — with
/// respect to BOTH the dense adjacency and the features.
#[test]
fn grad_through_peega_objective() {
    let n = 5;
    let mut a_sym = DenseMatrix::zeros(n, n);
    for &(i, j) in &[(0usize, 1usize), (1, 2), (2, 3), (3, 4), (0, 4)] {
        a_sym.set(i, j, 1.0);
        a_sym.set(j, i, 1.0);
    }
    let adj = Rc::new(CsrMatrix::from_dense(&a_sym, 0.5));
    let clean_prop = Rc::new(m(n, 3, 44).map(|v| v + 3.0));
    let x_feat = m_pos(n, 3, 45);
    assert_gradients(&[a_sym, x_feat], 1e-4, move |t, ids| {
        let eye = Rc::new(DenseMatrix::identity(n));
        let a_loop = t.add_const(ids[0], Rc::clone(&eye));
        let deg = t.row_sum(a_loop);
        let dinv = t.pow_scalar(deg, -0.5);
        let sr = t.scale_rows(a_loop, dinv);
        let an = t.scale_cols(sr, dinv);
        let h1 = t.matmul(an, ids[1]);
        let h = t.matmul(an, h1);
        let diff = t.sub_const(h, &clean_prop);
        let self_view = t.row_lp_norm_sum(diff, 2.0);
        let global = t.neighbor_lp_norm_sum(h, Rc::clone(&adj), Rc::clone(&clean_prop), 2.0);
        let weighted = t.scalar_mul(global, 0.05);
        t.add(self_view, weighted)
    });
}
