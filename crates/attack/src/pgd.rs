//! PGD topology attack (Xu et al. 2019), the white-box baseline.
//!
//! The attack relaxes the discrete edge-flip decision into a continuous
//! perturbation matrix `S ∈ [0,1]^{n×n}` with `Â = A + (1 − 2A) ∘ S`,
//! maximizes the (fixed-parameter) GCN training loss by projected gradient
//! ascent — projecting `S` after each step onto the box-and-budget set
//! `{0 ≤ S ≤ 1, Σ S ≤ δ}` — and finally draws Bernoulli samples from `S`,
//! keeping the feasible sample with the highest loss.
//!
//! PGD pre-trains the victim GCN once and keeps its parameters fixed
//! (the companion MinMax attack in [`crate::minmax`] retrains them
//! between ascent steps).

use crate::{budget_for, AttackResult, Attacker, AttackerNodes};
use bbgnn_autodiff::{Tape, TensorId};
use bbgnn_gnn::gcn::Gcn;
use bbgnn_gnn::train::TrainConfig;
use bbgnn_gnn::NodeClassifier;
use bbgnn_graph::Graph;
use bbgnn_linalg::{CsrMatrix, DenseMatrix, ExecContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;
use std::time::Instant;

/// PGD attack configuration.
#[derive(Clone, Debug)]
pub struct PgdConfig {
    /// Perturbation rate `r`.
    pub rate: f64,
    /// Projected-gradient ascent steps.
    pub ascent_steps: usize,
    /// Base ascent learning rate (decayed as `lr / √(t+1)`).
    pub lr: f64,
    /// Bernoulli sampling trials for the final discretization.
    pub sample_trials: usize,
    /// Victim training configuration.
    pub train: TrainConfig,
    /// Accessible nodes.
    pub attacker_nodes: AttackerNodes,
    /// RNG seed for the sampling phase.
    pub seed: u64,
}

impl Default for PgdConfig {
    fn default() -> Self {
        Self {
            rate: 0.1,
            ascent_steps: 80,
            lr: 0.5,
            sample_trials: 20,
            train: TrainConfig {
                epochs: 100,
                patience: 0,
                dropout: 0.0,
                ..Default::default()
            },
            attacker_nodes: AttackerNodes::All,
            seed: 0,
        }
    }
}

/// The PGD white-box attacker.
#[derive(Clone, Debug)]
pub struct PgdAttack {
    /// Configuration.
    pub config: PgdConfig,
}

impl PgdAttack {
    /// Creates a PGD attacker.
    pub fn new(config: PgdConfig) -> Self {
        Self { config }
    }
}

/// Builds the relaxed white-box GCN loss on a tape:
/// (the argument list mirrors the objective's inputs one-to-one)
/// `CE(softmax(Â_n relu(Â_n X W₀) W₁), Y_train)` where
/// `Â = A + (1 − 2A) ∘ S` and the weights are constants.
/// Returns `(loss, s_id)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn relaxed_loss(
    tape: &mut Tape,
    s_val: &DenseMatrix,
    clean_a: &Rc<DenseMatrix>,
    flip_dir: &Rc<DenseMatrix>,
    eye: &Rc<DenseMatrix>,
    xw0: &DenseMatrix,
    w1: &DenseMatrix,
    labels: &Rc<Vec<usize>>,
    rows: &Rc<Vec<usize>>,
) -> (TensorId, TensorId) {
    let s = tape.var(s_val.clone());
    let masked = tape.hadamard_const(s, Rc::clone(flip_dir));
    let a_hat = tape.add_const(masked, Rc::clone(clean_a));
    let a_loop = tape.add_const(a_hat, Rc::clone(eye));
    let deg = tape.row_sum(a_loop);
    let dinv = tape.pow_scalar(deg, -0.5);
    let scaled = tape.scale_rows(a_loop, dinv);
    let an = tape.scale_cols(scaled, dinv);
    let c0 = tape.constant(xw0.clone());
    let h1 = tape.matmul(an, c0);
    let h1 = tape.relu(h1);
    let w1c = tape.constant(w1.clone());
    let h1w = tape.matmul(h1, w1c);
    let logits = tape.matmul(an, h1w);
    let loss = tape.cross_entropy(logits, Rc::clone(labels), Rc::clone(rows));
    (loss, s)
}

/// Projects the strict upper triangle of `s` onto
/// `{0 ≤ x ≤ 1, Σ x ≤ budget}` (bisection on the shift `μ`), then mirrors
/// it to keep `s` symmetric with a zero diagonal.
pub(crate) fn project_budget(s: &mut DenseMatrix, budget: f64) {
    let n = s.rows();
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            entries.push((u, v, 0.5 * (s.get(u, v) + s.get(v, u))));
        }
    }
    let clip_sum = |mu: f64| -> f64 {
        entries
            .iter()
            .map(|&(_, _, x)| (x - mu).clamp(0.0, 1.0))
            .sum()
    };
    let mu = if clip_sum(0.0) <= budget {
        0.0
    } else {
        let (mut lo, mut hi) = (0.0, entries.iter().map(|e| e.2).fold(0.0_f64, f64::max));
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if clip_sum(mid) > budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    };
    for v in s.as_mut_slice() {
        *v = 0.0;
    }
    for &(u, v, x) in &entries {
        let clipped = (x - mu).clamp(0.0, 1.0);
        s.set(u, v, clipped);
        s.set(v, u, clipped);
    }
}

/// Zeroes entries of `s` whose edge is not allowed by `nodes`.
pub(crate) fn mask_inaccessible(s: &mut DenseMatrix, nodes: &AttackerNodes) {
    if matches!(nodes, AttackerNodes::All) {
        return;
    }
    let n = s.rows();
    for u in 0..n {
        for v in 0..n {
            if !nodes.edge_allowed(u, v) {
                s.set(u, v, 0.0);
            }
        }
    }
}

/// Evaluates the discrete white-box loss of flipping `flips` on `g` under
/// the fixed GCN weights.
pub(crate) fn discrete_loss(
    g: &Graph,
    flips: &[(usize, usize)],
    xw0: &DenseMatrix,
    w1: &DenseMatrix,
) -> f64 {
    let mut poisoned = g.clone();
    for &(u, v) in flips {
        poisoned.flip_edge(u, v);
    }
    let an: CsrMatrix = poisoned.normalized_adjacency();
    let h1 = an.spmm(xw0).map(|x| x.max(0.0));
    let logits = an.spmm(&h1.matmul(w1));
    // Mean cross-entropy over the train rows (the quantity PGD maximizes).
    let mut loss = 0.0;
    for &r in &g.split.train {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = max + row.iter().map(|v| (v - max).exp()).sum::<f64>().ln();
        loss -= row[g.labels[r]] - lse;
    }
    loss / g.split.train.len() as f64
}

/// Samples a feasible binary flip set from `S` (Bernoulli per upper-triangle
/// entry), retrying until `Σ flips ≤ budget`.
pub(crate) fn sample_flips(
    s: &DenseMatrix,
    budget: usize,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let n = s.rows();
    for _attempt in 0..50 {
        let mut flips = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let p = s.get(u, v);
                if p > 0.0 && rng.gen::<f64>() < p {
                    flips.push((u, v));
                }
            }
        }
        if flips.len() <= budget {
            return flips;
        }
    }
    // Fallback: the budget-many largest entries.
    top_k_flips(s, budget)
}

/// The `k` largest upper-triangle entries of `s` (deterministic fallback).
pub(crate) fn top_k_flips(s: &DenseMatrix, k: usize) -> Vec<(usize, usize)> {
    let n = s.rows();
    let mut entries: Vec<(f64, usize, usize)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if s.get(u, v) > 0.0 {
                entries.push((s.get(u, v), u, v));
            }
        }
    }
    entries.sort_by(|a, b| b.0.total_cmp(&a.0));
    entries
        .into_iter()
        .take(k)
        .map(|(_, u, v)| (u, v))
        .collect()
}

/// Shared PGD ascent loop; `retrain` is invoked before each ascent step so
/// MinMax can interleave model minimization. Returns the final flips plus a
/// flag set when the supervision layer stopped the ascent early (the
/// discretization then runs on the relaxed `S` accumulated so far).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pgd_optimize(
    g: &Graph,
    rate: f64,
    ascent_steps: usize,
    lr: f64,
    sample_trials: usize,
    attacker_nodes: &AttackerNodes,
    seed: u64,
    gcn: &mut Gcn,
    mut retrain: impl FnMut(&mut Gcn, &DenseMatrix, usize),
) -> (Vec<(usize, usize)>, bool) {
    let n = g.num_nodes();
    let budget = budget_for(g, rate);
    let clean_a = Rc::new(g.adjacency_dense());
    let flip_dir = Rc::new(clean_a.map(|a| 1.0 - 2.0 * a));
    let eye = Rc::new(DenseMatrix::identity(n));
    let labels = Rc::new(g.labels.clone());
    let rows = Rc::new(g.split.train.clone());
    let mut s = DenseMatrix::zeros(n, n);
    // Shared kernels + workspace arena for every ascent step's tape.
    let ctx = ExecContext::shared_from_env();

    let mut truncated = false;
    for step in 0..ascent_steps {
        // Cooperative stop site (DESIGN.md §11): discretize whatever the
        // ascent has produced so far.
        if crate::should_stop("attack/pgd/ascent") {
            truncated = true;
            break;
        }
        retrain(gcn, &s, step);
        let w = gcn.weights();
        assert_eq!(w.len(), 2, "PGD assumes the paper's 2-layer GCN victim");
        let xw0 = g.features.matmul(&w[0]);
        let mut tape = Tape::with_context(Rc::clone(&ctx));
        let (loss, s_id) = relaxed_loss(
            &mut tape, &s, &clean_a, &flip_dir, &eye, &xw0, &w[1], &labels, &rows,
        );
        tape.backward(loss);
        // lint: allow(panic) reason=s_id is a tape.var leaf on the path to loss, so backward always populates its gradient
        let grad = tape.grad(s_id).expect("perturbation gradient");
        let step_lr = lr / ((step + 1) as f64).sqrt();
        s.axpy(step_lr, grad);
        mask_inaccessible(&mut s, attacker_nodes);
        project_budget(&mut s, budget as f64);
    }

    // Discretize: Bernoulli trials, keep the feasible sample with the
    // highest (fixed-weight) loss.
    let w = gcn.weights();
    let xw0 = g.features.matmul(&w[0]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(f64, Vec<(usize, usize)>)> = None;
    for _ in 0..sample_trials.max(1) {
        let flips = sample_flips(&s, budget, &mut rng);
        if flips.is_empty() {
            continue;
        }
        let loss = discrete_loss(g, &flips, &xw0, &w[1]);
        if best.as_ref().map_or(true, |(b, _)| loss > *b) {
            best = Some((loss, flips));
        }
    }
    let flips = best
        .map(|(_, f)| f)
        .unwrap_or_else(|| top_k_flips(&s, budget));
    (flips, truncated)
}

impl Attacker for PgdAttack {
    fn name(&self) -> &'static str {
        "PGD"
    }

    fn attack(&mut self, g: &Graph) -> AttackResult {
        // lint: allow(clock) reason=elapsed wall time is reported in AttackResult and never read back into numerics
        let start = Instant::now();
        let _span = bbgnn_obs::span!("attack/pgd", nodes = g.num_nodes());
        let cfg = self.config.clone();
        // Pre-train the victim once; parameters stay fixed afterwards.
        let mut gcn = Gcn::paper_default(cfg.train.clone());
        gcn.fit(g);
        let (flips, truncated) = pgd_optimize(
            g,
            cfg.rate,
            cfg.ascent_steps,
            cfg.lr,
            cfg.sample_trials,
            &cfg.attacker_nodes,
            cfg.seed,
            &mut gcn,
            |_, _, _| {},
        );
        let mut poisoned = g.clone();
        for &(u, v) in &flips {
            poisoned.flip_edge(u, v);
        }
        AttackResult {
            edge_flips: g.edge_difference(&poisoned),
            feature_flips: 0,
            elapsed: start.elapsed(),
            poisoned,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbgnn_graph::datasets::DatasetSpec;

    #[test]
    fn projection_enforces_box_and_budget() {
        let mut s = DenseMatrix::uniform(6, 6, 3.0, 5).map(f64::abs);
        s.symmetrize();
        project_budget(&mut s, 4.0);
        let mut sum = 0.0;
        for u in 0..6 {
            assert_eq!(s.get(u, u), 0.0, "diagonal must be zero");
            for v in (u + 1)..6 {
                let x = s.get(u, v);
                assert!((0.0..=1.0).contains(&x), "entry {x} outside box");
                assert_eq!(x, s.get(v, u), "projection must stay symmetric");
                sum += x;
            }
        }
        assert!(sum <= 4.0 + 1e-6, "budget violated: {sum}");
    }

    #[test]
    fn projection_noop_when_feasible() {
        let mut s = DenseMatrix::zeros(4, 4);
        s.set(0, 1, 0.3);
        s.set(1, 0, 0.3);
        project_budget(&mut s, 2.0);
        assert!((s.get(0, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn respects_budget_and_degrades_loss() {
        let g = DatasetSpec::CoraLike.generate(0.05, 71);
        let mut atk = PgdAttack::new(PgdConfig {
            rate: 0.1,
            ascent_steps: 30,
            sample_trials: 10,
            ..Default::default()
        });
        let r = atk.attack(&g);
        assert!(r.edge_flips <= budget_for(&g, 0.1));
        assert!(r.edge_flips > 0, "PGD found no flips");
        assert_eq!(r.feature_flips, 0);
    }

    #[test]
    fn top_k_flips_orders_by_weight() {
        let mut s = DenseMatrix::zeros(3, 3);
        s.set(0, 1, 0.9);
        s.set(0, 2, 0.5);
        s.set(1, 2, 0.7);
        let flips = top_k_flips(&s, 2);
        assert_eq!(flips, vec![(0, 1), (1, 2)]);
    }
}
